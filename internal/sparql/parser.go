package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"kglids/internal/rdf"
)

// Parse parses a SELECT query in the supported SPARQL subset.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, q: &Query{Prefixes: builtinPrefixes(), Limit: -1}}
	if err := p.parseQuery(); err != nil {
		return nil, err
	}
	return p.q, nil
}

func builtinPrefixes() map[string]string {
	return map[string]string{
		"kglids": rdf.OntologyNS,
		"data":   rdf.ResourceNS,
		"rdf":    rdf.RDFNS,
		"rdfs":   rdf.RDFSNS,
		"xsd":    rdf.XSDNS,
	}
}

type parser struct {
	toks []token
	i    int
	q    *Query
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) accept(kind tokenKind, text string) bool {
	t := p.cur()
	if t.kind == kind && (text == "" || t.text == text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	t := p.cur()
	if t.kind != kind || (text != "" && t.text != text) {
		return t, fmt.Errorf("sparql: expected %q, got %q at %d", text, t.text, t.pos)
	}
	p.i++
	return t, nil
}

func (p *parser) parseQuery() error {
	for p.accept(tokKeyword, "PREFIX") {
		pref, err := p.expect(tokPrefixed, "")
		if err != nil {
			// allow "PREFIX foo: <iri>" lexed as keyword-ish name; re-try as error
			return err
		}
		name := strings.TrimSuffix(pref.text, ":")
		if i := strings.IndexByte(name, ':'); i >= 0 {
			name = name[:i]
		}
		iri, err := p.expect(tokIRI, "")
		if err != nil {
			return err
		}
		p.q.Prefixes[name] = iri.text
	}
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return err
	}
	if p.accept(tokKeyword, "DISTINCT") {
		p.q.Distinct = true
	}
	if err := p.parseProjection(); err != nil {
		return err
	}
	if _, err := p.expect(tokKeyword, "WHERE"); err != nil {
		return err
	}
	grp, err := p.parseGroup()
	if err != nil {
		return err
	}
	p.q.Where = grp
	return p.parseModifiers()
}

func (p *parser) parseProjection() error {
	if p.accept(tokPunct, "*") {
		p.q.Star = true
		return nil
	}
	for {
		t := p.cur()
		switch {
		case t.kind == tokVar:
			p.i++
			p.q.Projection = append(p.q.Projection, Projection{Var: t.text})
		case t.kind == tokPunct && t.text == "(":
			p.i++
			agg, name, err := p.parseAggregateAs()
			if err != nil {
				return err
			}
			p.q.Projection = append(p.q.Projection, Projection{Var: name, Agg: agg})
		default:
			if len(p.q.Projection) == 0 {
				return fmt.Errorf("sparql: empty projection at %d", t.pos)
			}
			return nil
		}
	}
}

func (p *parser) parseAggregateAs() (*Aggregate, string, error) {
	fn, err := p.expect(tokKeyword, "")
	if err != nil {
		return nil, "", err
	}
	switch fn.text {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
	default:
		return nil, "", fmt.Errorf("sparql: unknown aggregate %q", fn.text)
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, "", err
	}
	agg := &Aggregate{Fn: fn.text}
	if p.accept(tokKeyword, "DISTINCT") {
		agg.Distinct = true
	}
	if p.accept(tokPunct, "*") {
		agg.Var = "*"
	} else {
		v, err := p.expect(tokVar, "")
		if err != nil {
			return nil, "", err
		}
		agg.Var = v.text
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, "", err
	}
	if _, err := p.expect(tokKeyword, "AS"); err != nil {
		return nil, "", err
	}
	v, err := p.expect(tokVar, "")
	if err != nil {
		return nil, "", err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, "", err
	}
	return agg, v.text, nil
}

func (p *parser) parseGroup() (*GroupPattern, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	g := &GroupPattern{}
	for {
		t := p.cur()
		switch {
		case t.kind == tokPunct && t.text == "}":
			p.i++
			return g, nil
		case t.kind == tokKeyword && t.text == "FILTER":
			p.i++
			e, err := p.parseParenExpr()
			if err != nil {
				return nil, err
			}
			g.Filters = append(g.Filters, e)
		case t.kind == tokKeyword && t.text == "OPTIONAL":
			p.i++
			sub, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			g.Optionals = append(g.Optionals, sub)
		case t.kind == tokKeyword && t.text == "GRAPH":
			p.i++
			node, err := p.parseNode()
			if err != nil {
				return nil, err
			}
			sub, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			g.Graphs = append(g.Graphs, &GraphPattern{Graph: node, Pattern: sub})
		case t.kind == tokPunct && t.text == "{":
			// { A } UNION { B } [UNION { C }]
			first, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			alts := []*GroupPattern{first}
			for p.accept(tokKeyword, "UNION") {
				alt, err := p.parseGroup()
				if err != nil {
					return nil, err
				}
				alts = append(alts, alt)
			}
			g.Unions = append(g.Unions, alts)
		case t.kind == tokPunct && t.text == ".":
			p.i++
		case t.kind == tokEOF:
			return nil, fmt.Errorf("sparql: unexpected EOF in group")
		default:
			if err := p.parseTripleBlock(g); err != nil {
				return nil, err
			}
		}
	}
}

// parseTripleBlock parses "s p o [; p o]* [, o]* ."
func (p *parser) parseTripleBlock(g *GroupPattern) error {
	s, err := p.parseNode()
	if err != nil {
		return err
	}
	for {
		pred, err := p.parseNode()
		if err != nil {
			return err
		}
		for {
			o, err := p.parseNode()
			if err != nil {
				return err
			}
			g.Triples = append(g.Triples, TriplePattern{S: s, P: pred, O: o})
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		if !p.accept(tokPunct, ";") {
			break
		}
		// Allow trailing "; }" permissively.
		if t := p.cur(); t.kind == tokPunct && (t.text == "}" || t.text == ".") {
			break
		}
	}
	return nil
}

func (p *parser) parseNode() (NodePattern, error) {
	t := p.next()
	switch t.kind {
	case tokVar:
		return NodePattern{Var: t.text}, nil
	case tokIRI:
		return NodePattern{Term: rdf.IRI(t.text)}, nil
	case tokPrefixed:
		term, err := p.resolvePrefixed(t.text)
		if err != nil {
			return NodePattern{}, err
		}
		return NodePattern{Term: term}, nil
	case tokString:
		return NodePattern{Term: rdf.String(t.text)}, nil
	case tokNumber:
		return NodePattern{Term: numberTerm(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "A": // "a" shorthand for rdf:type
			return NodePattern{Term: rdf.RDFType}, nil
		case "TRUE":
			return NodePattern{Term: rdf.Bool(true)}, nil
		case "FALSE":
			return NodePattern{Term: rdf.Bool(false)}, nil
		}
	}
	return NodePattern{}, fmt.Errorf("sparql: unexpected token %q at %d in triple pattern", t.text, t.pos)
}

func (p *parser) resolvePrefixed(name string) (rdf.Term, error) {
	i := strings.IndexByte(name, ':')
	pref, local := name[:i], name[i+1:]
	base, ok := p.q.Prefixes[pref]
	if !ok {
		return rdf.Term{}, fmt.Errorf("sparql: unknown prefix %q", pref)
	}
	return rdf.IRI(base + local), nil
}

func numberTerm(text string) rdf.Term {
	if strings.Contains(text, ".") {
		f, _ := strconv.ParseFloat(text, 64)
		return rdf.Float(f)
	}
	n, _ := strconv.ParseInt(text, 10, 64)
	return rdf.Integer(n)
}

// parseParenExpr parses "( expr )".
func (p *parser) parseParenExpr() (Expr, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	return e, nil
}

// Expression grammar: or → and → not → comparison → additive → primary.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokOp, "||") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "||", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokOp, "&&") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "&&", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokOp, "!") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "!", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tokOp {
		switch t.text {
		case "=", "!=", "<", "<=", ">", ">=":
			p.i++
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: t.text, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		isArith := (t.kind == tokOp && (t.text == "+" || t.text == "-" || t.text == "/")) ||
			(t.kind == tokPunct && t.text == "*")
		if !isArith {
			return left, nil
		}
		p.i++
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: t.text, Left: left, Right: right}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokVar:
		return &VarExpr{Name: t.text}, nil
	case tokString:
		return &LitExpr{Term: rdf.String(t.text)}, nil
	case tokNumber:
		return &LitExpr{Term: numberTerm(t.text)}, nil
	case tokIRI:
		return &LitExpr{Term: rdf.IRI(t.text)}, nil
	case tokPrefixed:
		term, err := p.resolvePrefixed(t.text)
		if err != nil {
			return nil, err
		}
		return &LitExpr{Term: term}, nil
	case tokPunct:
		if t.text == "(" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokOp:
		if t.text == "-" {
			x, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{Op: "-", X: x}, nil
		}
	case tokKeyword:
		switch t.text {
		case "TRUE":
			return &LitExpr{Term: rdf.Bool(true)}, nil
		case "FALSE":
			return &LitExpr{Term: rdf.Bool(false)}, nil
		case "CONTAINS", "STRSTARTS", "REGEX", "STR", "BOUND", "LCASE", "UCASE":
			if _, err := p.expect(tokPunct, "("); err != nil {
				return nil, err
			}
			call := &CallExpr{Fn: t.text}
			for {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if !p.accept(tokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return call, nil
		}
	}
	return nil, fmt.Errorf("sparql: unexpected token %q at %d in expression", t.text, t.pos)
}

func (p *parser) parseModifiers() error {
	for {
		t := p.cur()
		if t.kind != tokKeyword {
			break
		}
		switch t.text {
		case "GROUP":
			p.i++
			if _, err := p.expect(tokKeyword, "BY"); err != nil {
				return err
			}
			for p.cur().kind == tokVar {
				p.q.GroupBy = append(p.q.GroupBy, p.next().text)
			}
		case "ORDER":
			p.i++
			if _, err := p.expect(tokKeyword, "BY"); err != nil {
				return err
			}
			for {
				tt := p.cur()
				if tt.kind == tokKeyword && (tt.text == "ASC" || tt.text == "DESC") {
					p.i++
					if _, err := p.expect(tokPunct, "("); err != nil {
						return err
					}
					v, err := p.expect(tokVar, "")
					if err != nil {
						return err
					}
					if _, err := p.expect(tokPunct, ")"); err != nil {
						return err
					}
					p.q.OrderBy = append(p.q.OrderBy, OrderKey{Var: v.text, Desc: tt.text == "DESC"})
				} else if tt.kind == tokVar {
					p.i++
					p.q.OrderBy = append(p.q.OrderBy, OrderKey{Var: tt.text})
				} else {
					break
				}
			}
		case "LIMIT":
			p.i++
			n, err := p.expect(tokNumber, "")
			if err != nil {
				return err
			}
			p.q.Limit, _ = strconv.Atoi(n.text)
		case "OFFSET":
			p.i++
			n, err := p.expect(tokNumber, "")
			if err != nil {
				return err
			}
			p.q.Offset, _ = strconv.Atoi(n.text)
		default:
			return fmt.Errorf("sparql: unexpected keyword %q at %d", t.text, t.pos)
		}
	}
	if t := p.cur(); t.kind != tokEOF {
		return fmt.Errorf("sparql: trailing input %q at %d", t.text, t.pos)
	}
	return nil
}
