package sparql

import (
	"testing"
)

// benchQueries are multi-pattern discovery-shaped queries over the seeded
// lake (the shapes SearchKeywords/TopKLibraries-style traffic issues).
var benchQueries = []struct{ name, src string }{
	{"IntColumns4Pattern", `
		SELECT ?t ?c ?n WHERE {
			?t a kglids:Table .
			?c kglids:isPartOf ?t ;
			   kglids:name ?n ;
			   kglids:dataType "int" .
		}`},
	{"SimilarityJoin", `
		SELECT ?c ?d ?t WHERE {
			?c kglids:labelSimilarity ?d .
			?d kglids:isPartOf ?t .
			?t a kglids:Table .
		}`},
	{"LibrariesGroupBy", `
		SELECT ?lib (COUNT(?s) AS ?n) WHERE {
			GRAPH ?g { ?s kglids:callsLibrary ?lib . }
		} GROUP BY ?lib ORDER BY DESC(?n)`},
}

// BenchmarkSPARQL_IDSpaceVsTermSpace compares the compiled ID-space engine
// against the term-space reference on a 60-table lake. The acceptance bar
// for the ID-space refactor is a ≥3x speedup on the multi-pattern shapes
// with allocations per row cut by an order of magnitude.
func BenchmarkSPARQL_IDSpaceVsTermSpace(b *testing.B) {
	st := buildSeededStore(42, 60)
	e := NewEngine(st)
	e.SetCacheCapacity(0)
	for _, q := range benchQueries {
		parsed, err := Parse(q.src)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(q.name+"/TermSpace", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.ExecReference(parsed); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.name+"/IDSpace", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.Exec(parsed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSPARQL_CachedQuery measures the steady-state cost of repeated
// discovery traffic: everything after the first execution is a cache hit.
func BenchmarkSPARQL_CachedQuery(b *testing.B) {
	st := buildSeededStore(42, 60)
	e := NewEngine(st)
	if _, err := e.Query(benchQueries[0].src); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(benchQueries[0].src); err != nil {
			b.Fatal(err)
		}
	}
}
