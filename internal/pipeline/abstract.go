package pipeline

import (
	"fmt"
	"strings"

	"kglids/internal/pyast"
)

// Metadata is the per-pipeline metadata (the M_D input of Algorithm 1):
// dataset used, author, votes, score, and associated ML task.
type Metadata struct {
	Author  string
	Dataset string
	Task    string
	Votes   int
	Score   float64
}

// Script is one pipeline script to abstract.
type Script struct {
	ID     string // e.g. "kaggle/titanic/user1/notebook.py"
	Source string
	Meta   Metadata
}

// Param is a call parameter after documentation enrichment. Implicit marks
// a positional argument whose name was inferred from the docs; Default
// marks a documented parameter the call did not specify.
type Param struct {
	Name     string
	Value    string
	Implicit bool
	Default  bool
}

// CallInfo is one resolved library call within a statement.
type CallInfo struct {
	Qualified  string // e.g. "sklearn.ensemble.RandomForestClassifier"
	Library    string // top-level library, e.g. "sklearn"
	Params     []Param
	ReturnType string
}

// Statement is the abstraction of one pipeline statement: its text,
// control-flow type, resolved calls, variable def/use sets, predicted
// dataset usage, and data-flow edges.
type Statement struct {
	Index       int
	Line        int
	Text        string
	Flow        string // rdf.Flow* values
	Calls       []CallInfo
	DefinedVars []string
	UsedVars    []string
	TableReads  []string // dataset paths passed to read_csv & friends
	ColumnReads []string // column names accessed via DataFrame subscripts
	DataFlowTo  []int    // statement indexes that consume variables defined here
}

// Abstraction is the result of abstracting one script: the statement graph
// plus the set of qualified library calls for the library graph.
type Abstraction struct {
	Script     Script
	Statements []*Statement
	// CallCounts maps qualified call names to the number of statements
	// calling them, feeding the library graph and Figure 4.
	CallCounts map[string]int
	// ParseError records scripts that failed static analysis (skipped, as
	// the original system skips unparseable pipelines).
	ParseError error
}

// Abstractor runs static code analysis + documentation analysis + dataset
// usage analysis (Algorithm 1 worker body).
type Abstractor struct {
	Docs *Docs
}

// NewAbstractor returns an abstractor over the built-in docs corpus.
func NewAbstractor() *Abstractor { return &Abstractor{Docs: BuiltinDocs()} }

// Abstract analyzes one script.
func (a *Abstractor) Abstract(s Script) *Abstraction {
	out := &Abstraction{Script: s, CallCounts: map[string]int{}}
	mod, err := pyast.Parse(s.Source)
	if err != nil {
		out.ParseError = err
		return out
	}
	w := &walker{
		docs:    a.Docs,
		abs:     out,
		aliases: map[string]string{},
		env:     map[string]string{},
		lastDef: map[string]int{},
	}
	w.walkBody(mod.Body, "")
	return out
}

// walker carries the static-analysis state through the statement walk.
type walker struct {
	docs    *Docs
	abs     *Abstraction
	aliases map[string]string // import alias -> qualified module/function
	env     map[string]string // variable -> inferred qualified type
	lastDef map[string]int    // variable -> statement index of last definition
}

func (w *walker) walkBody(body []pyast.Stmt, flow string) {
	for _, st := range body {
		w.walkStmt(st, flow)
	}
}

func flowOr(flow, def string) string {
	if flow != "" {
		return flow
	}
	return def
}

func (w *walker) walkStmt(st pyast.Stmt, flow string) {
	switch x := st.(type) {
	case *pyast.ImportStmt:
		for _, al := range x.Names {
			w.aliases[al.Bound()] = al.Name
		}
		w.emit(st, flowOr(flow, "import"), nil, nil, nil, nil)
	case *pyast.FromImportStmt:
		for _, al := range x.Names {
			if al.Name == "*" {
				continue
			}
			w.aliases[al.Bound()] = x.Module + "." + al.Name
		}
		w.emit(st, flowOr(flow, "import"), nil, nil, nil, nil)
	case *pyast.AssignStmt:
		w.walkAssign(x, flowOr(flow, "straight"))
	case *pyast.ExprStmt:
		// Discard statements whose outermost call is insignificant
		// (print(...), df.head(), ...), per Section 3.1; the paper's
		// Figure 2 drops the whole evaluation print line.
		if call, ok := x.X.(*pyast.Call); ok {
			if q, _ := w.resolveCallable(call.Func); IsInsignificant(q) {
				return
			}
			if typ, method, ok := w.splitMethod(call.Func); ok {
				if IsInsignificant(typ + "." + method) {
					return
				}
			}
		}
		calls, tables, cols, used := w.analyzeExpr(x.X)
		// A bare call can still mutate its receiver (e.g. clf.fit(X, y));
		// model receivers as used.
		w.emit(st, flowOr(flow, "straight"), calls, tables, cols, used)
	case *pyast.IfStmt:
		w.emitControl(st, flowOr(flow, "conditional"), x.Cond)
		w.walkBody(x.Body, "conditional")
		w.walkBody(x.Orelse, "conditional")
	case *pyast.ForStmt:
		w.emitControl(st, flowOr(flow, "loop"), x.Iter)
		// Loop targets are defined by the loop header.
		idx := len(w.abs.Statements) - 1
		for _, v := range targetVars(x.Target) {
			w.env[v] = ""
			w.lastDef[v] = idx
			w.abs.Statements[idx].DefinedVars = append(w.abs.Statements[idx].DefinedVars, v)
		}
		w.walkBody(x.Body, "loop")
	case *pyast.WhileStmt:
		w.emitControl(st, flowOr(flow, "loop"), x.Cond)
		w.walkBody(x.Body, "loop")
	case *pyast.FuncDef:
		w.emitControl(st, "user_defined_function", nil)
		// Function parameters shadow the environment inside the body.
		saved := map[string]string{}
		for _, p := range x.Params {
			if t, ok := w.env[p]; ok {
				saved[p] = t
			}
			w.env[p] = ""
		}
		w.walkBody(x.Body, "user_defined_function")
		for _, p := range x.Params {
			if t, ok := saved[p]; ok {
				w.env[p] = t
			} else {
				delete(w.env, p)
			}
		}
	case *pyast.ReturnStmt:
		var calls []CallInfo
		var tables, cols, used []string
		if x.Value != nil {
			calls, tables, cols, used = w.analyzeExpr(x.Value)
		}
		w.emit(st, flowOr(flow, "user_defined_function"), calls, tables, cols, used)
	case *pyast.WithStmt:
		calls, tables, cols, used := w.analyzeExpr(x.Context)
		w.emit(st, flowOr(flow, "straight"), calls, tables, cols, used)
		if x.AsName != "" {
			idx := len(w.abs.Statements) - 1
			w.lastDef[x.AsName] = idx
			w.abs.Statements[idx].DefinedVars = append(w.abs.Statements[idx].DefinedVars, x.AsName)
		}
		w.walkBody(x.Body, flow)
	case *pyast.TryStmt:
		w.walkBody(x.Body, flow)
		w.walkBody(x.Handler, flowOr(flow, "conditional"))
		w.walkBody(x.Final, flow)
	case *pyast.SimpleStmt:
		// pass/break/continue carry no pipeline semantics.
	}
}

// emitControl records a control statement (if/for/while/def header).
func (w *walker) emitControl(st pyast.Stmt, flow string, cond pyast.Expr) {
	var calls []CallInfo
	var tables, cols, used []string
	if cond != nil {
		calls, tables, cols, used = w.analyzeExpr(cond)
	}
	w.emit(st, flow, calls, tables, cols, used)
}

func (w *walker) walkAssign(x *pyast.AssignStmt, flow string) {
	calls, tables, cols, used := w.analyzeExpr(x.Value)
	// Subscript/attribute targets also read (mutate) their base variable
	// and may predict column writes (e.g. X['NormalizedAge'] = ...).
	var defined []string
	for _, tgt := range x.Targets {
		switch t := tgt.(type) {
		case *pyast.Name:
			defined = append(defined, t.ID)
		case *pyast.TupleLit:
			defined = append(defined, targetVars(t)...)
		case *pyast.ListLit:
			for _, e := range t.Elts {
				defined = append(defined, targetVars(e)...)
			}
		case *pyast.Subscript:
			_, tTables, tCols, tUsed := w.analyzeExpr(t)
			tables = append(tables, tTables...)
			cols = append(cols, tCols...)
			used = append(used, tUsed...)
			defined = append(defined, targetVars(t.Value)...)
		case *pyast.Attribute:
			defined = append(defined, targetVars(t.Value)...)
		}
	}
	// Augmented assignment reads its targets too.
	if x.Op != "=" {
		used = append(used, defined...)
	}
	w.emit(x, flow, calls, tables, cols, used)
	idx := len(w.abs.Statements) - 1
	st := w.abs.Statements[idx]
	st.DefinedVars = append(st.DefinedVars, dedup(defined)...)

	// Type propagation for documentation analysis: single name target takes
	// the value's inferred type; tuple targets of a tuple value map
	// pairwise.
	if x.Op == "=" && len(x.Targets) >= 1 {
		w.propagateTypes(x.Targets[len(x.Targets)-1+0], x.Value, calls)
		// Chained assignment a = b = v: every target gets the same type.
		for _, tgt := range x.Targets {
			w.propagateTypes(tgt, x.Value, calls)
		}
	}
	for _, v := range st.DefinedVars {
		w.lastDef[v] = idx
	}
}

func (w *walker) propagateTypes(target, value pyast.Expr, calls []CallInfo) {
	typ := w.exprType(value, calls)
	switch t := target.(type) {
	case *pyast.Name:
		w.env[t.ID] = typ
	case *pyast.TupleLit:
		if vt, ok := value.(*pyast.TupleLit); ok && len(vt.Elts) == len(t.Elts) {
			for i := range t.Elts {
				if n, ok := t.Elts[i].(*pyast.Name); ok {
					w.env[n.ID] = w.exprType(vt.Elts[i], nil)
				}
			}
			return
		}
		// Tuple unpacking of a call (e.g. train_test_split): element types
		// unknown, but keep DataFrame propagation for common splits.
		for i := range t.Elts {
			if n, ok := t.Elts[i].(*pyast.Name); ok {
				w.env[n.ID] = ""
			}
		}
	}
}

// exprType infers the qualified type of an expression for documentation
// analysis.
func (w *walker) exprType(e pyast.Expr, calls []CallInfo) string {
	switch x := e.(type) {
	case *pyast.Name:
		return w.env[x.ID]
	case *pyast.Call:
		if q, ok := w.resolveCallable(x.Func); ok {
			if doc, ok := w.docs.Lookup(q); ok {
				return doc.ReturnType
			}
			if typ, method, ok := w.splitMethod(x.Func); ok {
				if doc, ok := w.docs.LookupMethod(typ, method); ok {
					_ = doc
					return doc.ReturnType
				}
			}
			return ""
		}
		if typ, method, ok := w.splitMethod(x.Func); ok {
			if doc, ok := w.docs.LookupMethod(typ, method); ok {
				return doc.ReturnType
			}
		}
		return ""
	case *pyast.Subscript:
		// df['col'] yields a Series.
		if w.exprType(x.Value, nil) == "pandas.DataFrame" {
			if _, isStr := x.Index.(*pyast.Str); isStr {
				return "pandas.Series"
			}
			if _, isList := x.Index.(*pyast.ListLit); isList {
				return "pandas.DataFrame"
			}
		}
		return ""
	case *pyast.Attribute:
		// Attribute of a typed value without call: unknown.
		return ""
	}
	return ""
}

// resolveCallable resolves a call-function expression to a fully qualified
// library name using the import aliases ("pd.read_csv" →
// "pandas.read_csv"; from-imported "SimpleImputer" →
// "sklearn.impute.SimpleImputer").
func (w *walker) resolveCallable(f pyast.Expr) (string, bool) {
	switch x := f.(type) {
	case *pyast.Name:
		if q, ok := w.aliases[x.ID]; ok {
			return q, true
		}
		return x.ID, false
	case *pyast.Attribute:
		base, ok := w.resolveCallable(x.Value)
		if ok {
			return base + "." + x.Attr, true
		}
		return base + "." + x.Attr, false
	}
	return "", false
}

// splitMethod resolves "receiver.method" where the receiver is a variable
// with an inferred type.
func (w *walker) splitMethod(f pyast.Expr) (typ, method string, ok bool) {
	attr, isAttr := f.(*pyast.Attribute)
	if !isAttr {
		return "", "", false
	}
	recvType := w.exprType(attr.Value, nil)
	if recvType == "" {
		if n, isName := attr.Value.(*pyast.Name); isName {
			recvType = w.env[n.ID]
		}
	}
	if recvType == "" {
		return "", "", false
	}
	return recvType, attr.Attr, true
}

// analyzeExpr walks an expression collecting resolved calls, predicted
// dataset reads (tables and columns), and used variables.
func (w *walker) analyzeExpr(e pyast.Expr) (calls []CallInfo, tables, cols, used []string) {
	var walk func(pyast.Expr)
	walk = func(e pyast.Expr) {
		switch x := e.(type) {
		case *pyast.Name:
			if _, isAlias := w.aliases[x.ID]; !isAlias {
				used = append(used, x.ID)
			}
		case *pyast.Attribute:
			walk(x.Value)
		case *pyast.Call:
			if ci, ok := w.resolveCall(x); ok {
				calls = append(calls, ci)
				// Dataset usage analysis (Algorithm 1 lines 14-15).
				if isReadCall(ci.Qualified) && len(x.Args) > 0 {
					if s, isStr := x.Args[0].(*pyast.Str); isStr {
						tables = append(tables, s.Value)
					}
				}
			}
			// Function position: only walk non-Name/Attribute funcs
			// (e.g. computed) to avoid treating the library as a var.
			if _, isName := x.Func.(*pyast.Name); !isName {
				if attr, isAttr := x.Func.(*pyast.Attribute); isAttr {
					walk(attr.Value)
				} else {
					walk(x.Func)
				}
			} else {
				n := x.Func.(*pyast.Name)
				if _, isAlias := w.aliases[n.ID]; !isAlias {
					if _, isVar := w.env[n.ID]; isVar {
						used = append(used, n.ID)
					}
				}
			}
			for _, a := range x.Args {
				walk(a)
			}
			for _, k := range x.Keywords {
				walk(k.Value)
			}
		case *pyast.Subscript:
			// Column usage analysis (Algorithm 1 lines 16-17): string
			// subscripts over DataFrame-typed variables predict column
			// reads.
			vt := w.exprType(x.Value, nil)
			if vt == "pandas.DataFrame" || vt == "pandas.Series" {
				switch idx := x.Index.(type) {
				case *pyast.Str:
					cols = append(cols, idx.Value)
				case *pyast.ListLit:
					for _, el := range idx.Elts {
						if s, isStr := el.(*pyast.Str); isStr {
							cols = append(cols, s.Value)
						}
					}
				}
			}
			walk(x.Value)
			if x.Index != nil {
				walk(x.Index)
			}
		case *pyast.BinOp:
			walk(x.Left)
			walk(x.Right)
		case *pyast.UnaryOp:
			walk(x.X)
		case *pyast.ListLit:
			for _, el := range x.Elts {
				walk(el)
			}
		case *pyast.TupleLit:
			for _, el := range x.Elts {
				walk(el)
			}
		case *pyast.DictLit:
			for i := range x.Keys {
				walk(x.Keys[i])
				walk(x.Values[i])
			}
		case *pyast.Lambda:
			walk(x.Body)
		case *pyast.SliceExpr:
			if x.Lo != nil {
				walk(x.Lo)
			}
			if x.Hi != nil {
				walk(x.Hi)
			}
		}
	}
	walk(e)
	return calls, dedup(tables), dedup(cols), dedup(used)
}

// resolveCall resolves one call and performs documentation analysis
// (Algorithm 1 lines 9-13): parameter-name inference for positional
// arguments and default-parameter completion.
func (w *walker) resolveCall(c *pyast.Call) (CallInfo, bool) {
	var doc *FuncDoc
	var qualified string
	if q, ok := w.resolveCallable(c.Func); ok {
		qualified = q
		doc, _ = w.docs.Lookup(q)
	}
	if doc == nil {
		if typ, method, ok := w.splitMethod(c.Func); ok {
			if d, found := w.docs.LookupMethod(typ, method); found {
				doc = d
				qualified = d.Qualified
			}
		}
	}
	if doc == nil {
		if qualified == "" {
			return CallInfo{}, false
		}
		// Unknown library call: keep the qualified name without enrichment.
		ci := CallInfo{Qualified: qualified, Library: topLevel(qualified)}
		for i, a := range c.Args {
			ci.Params = append(ci.Params, Param{Name: fmt.Sprintf("arg%d", i), Value: exprValue(a), Implicit: true})
		}
		for _, k := range c.Keywords {
			ci.Params = append(ci.Params, Param{Name: k.Name, Value: exprValue(k.Value)})
		}
		w.abs.CallCounts[qualified]++
		return ci, true
	}
	ci := CallInfo{Qualified: qualified, Library: topLevel(qualified), ReturnType: doc.ReturnType}
	specified := map[string]bool{}
	// Positional arguments: names inferred from the documentation order
	// (implicit parameters, e.g. n_estimators for RandomForest's first
	// positional argument).
	for i, a := range c.Args {
		name := fmt.Sprintf("arg%d", i)
		if i < len(doc.Params) {
			name = doc.Params[i].Name
		}
		specified[name] = true
		ci.Params = append(ci.Params, Param{Name: name, Value: exprValue(a), Implicit: true})
	}
	for _, k := range c.Keywords {
		specified[k.Name] = true
		ci.Params = append(ci.Params, Param{Name: k.Name, Value: exprValue(k.Value)})
	}
	// Default parameters not specified in the call (Algorithm 1 line 12).
	for _, p := range doc.Params {
		if !specified[p.Name] && p.Default != "" {
			ci.Params = append(ci.Params, Param{Name: p.Name, Value: p.Default, Default: true})
		}
	}
	w.abs.CallCounts[qualified]++
	return ci, true
}

// emit appends a Statement and wires code/data-flow edges.
func (w *walker) emit(st pyast.Stmt, flow string, calls []CallInfo, tables, cols, used []string) {
	idx := len(w.abs.Statements)
	stmt := &Statement{
		Index:       idx,
		Line:        st.Pos(),
		Text:        pyast.StmtText(st),
		Flow:        flow,
		Calls:       calls,
		TableReads:  tables,
		ColumnReads: cols,
		UsedVars:    used,
	}
	w.abs.Statements = append(w.abs.Statements, stmt)
	// Data flow: each used variable links from its defining statement.
	seen := map[int]bool{}
	for _, v := range used {
		if def, ok := w.lastDef[v]; ok && def != idx && !seen[def] {
			seen[def] = true
			w.abs.Statements[def].DataFlowTo = append(w.abs.Statements[def].DataFlowTo, idx)
		}
	}
}

func targetVars(e pyast.Expr) []string {
	switch x := e.(type) {
	case *pyast.Name:
		return []string{x.ID}
	case *pyast.TupleLit:
		var out []string
		for _, el := range x.Elts {
			out = append(out, targetVars(el)...)
		}
		return out
	case *pyast.ListLit:
		var out []string
		for _, el := range x.Elts {
			out = append(out, targetVars(el)...)
		}
		return out
	case *pyast.Subscript:
		return targetVars(x.Value)
	case *pyast.Attribute:
		return targetVars(x.Value)
	}
	return nil
}

func dedup(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func topLevel(qualified string) string {
	if i := strings.IndexByte(qualified, '.'); i >= 0 {
		return qualified[:i]
	}
	return qualified
}

func isReadCall(qualified string) bool {
	switch qualified {
	case "pandas.read_csv", "pandas.read_json", "pandas.read_excel":
		return true
	}
	return false
}

func exprValue(e pyast.Expr) string { return e.String() }
