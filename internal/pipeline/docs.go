// Package pipeline implements KGLiDS's Pipeline Abstraction (paper
// Section 3.1, Algorithm 1): lightweight static analysis of Python pipeline
// scripts enriched with programming-library documentation analysis and
// dataset-usage analysis, producing one named graph per pipeline plus a
// shared library graph.
package pipeline

import "strings"

// ParamDoc documents one function/constructor parameter: its name and the
// lexical form of its default value ("" when the parameter is required).
type ParamDoc struct {
	Name    string
	Default string
}

// FuncDoc is the machine-readable documentation entry for a class
// constructor or function: parameter names (in positional order), default
// values, and the return type (a qualified type name). This is the JSON
// document per class and method that Section 3.1's Documentation Analysis
// describes.
type FuncDoc struct {
	Qualified  string // e.g. "sklearn.ensemble.RandomForestClassifier"
	Params     []ParamDoc
	ReturnType string // qualified type of the return value
}

// Docs is the programming-library documentation corpus (the L_D input of
// Algorithm 1). The original system scrapes pandas/sklearn documentation;
// here the same lookup tables are compiled in.
type Docs struct {
	funcs map[string]*FuncDoc
	// methods maps "qualifiedType.method" for method resolution on values
	// whose type documentation analysis inferred.
	methods map[string]*FuncDoc
}

// Lookup returns documentation for a fully qualified function or class.
func (d *Docs) Lookup(qualified string) (*FuncDoc, bool) {
	f, ok := d.funcs[qualified]
	return f, ok
}

// LookupMethod returns documentation for a method on a qualified type.
func (d *Docs) LookupMethod(typ, method string) (*FuncDoc, bool) {
	f, ok := d.methods[typ+"."+method]
	return f, ok
}

// Libraries returns the set of top-level libraries documented.
func (d *Docs) Libraries() []string {
	seen := map[string]bool{}
	var out []string
	for q := range d.funcs {
		lib := q
		if i := strings.IndexByte(q, '.'); i >= 0 {
			lib = q[:i]
		}
		if !seen[lib] {
			seen[lib] = true
			out = append(out, lib)
		}
	}
	return out
}

// entry is the compact literal form the corpus is written in.
type entry struct {
	q   string // qualified name
	ps  string // comma-separated params, "name" or "name=default"
	ret string // return type
}

func parseParams(ps string) []ParamDoc {
	if ps == "" {
		return nil
	}
	var out []ParamDoc
	for _, p := range splitTopLevel(ps) {
		p = strings.TrimSpace(p)
		if i := strings.IndexByte(p, '='); i >= 0 {
			out = append(out, ParamDoc{Name: p[:i], Default: p[i+1:]})
		} else {
			out = append(out, ParamDoc{Name: p})
		}
	}
	return out
}

// splitTopLevel splits on commas outside quotes and parentheses, so
// defaults like "sep=','" and "feature_range=(0, 1)" survive intact.
func splitTopLevel(s string) []string {
	var out []string
	depth := 0
	inQuote := byte(0)
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inQuote != 0:
			if c == inQuote {
				inQuote = 0
			}
		case c == '\'' || c == '"':
			inQuote = c
		case c == '(' || c == '[' || c == '{':
			depth++
		case c == ')' || c == ']' || c == '}':
			depth--
		case c == ',' && depth == 0:
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	out = append(out, s[start:])
	return out
}

func (d *Docs) add(e entry) {
	d.funcs[e.q] = &FuncDoc{Qualified: e.q, ReturnType: e.ret, Params: parseParams(e.ps)}
}

func (d *Docs) addMethod(typ, method string, e entry) {
	d.methods[typ+"."+method] = &FuncDoc{Qualified: e.q, ReturnType: e.ret, Params: parseParams(e.ps)}
}

// BuiltinDocs returns the compiled-in documentation corpus covering the
// pandas / scikit-learn / numpy / xgboost subset that data science
// pipelines rely on.
func BuiltinDocs() *Docs {
	d := &Docs{funcs: map[string]*FuncDoc{}, methods: map[string]*FuncDoc{}}
	const (
		df  = "pandas.DataFrame"
		ser = "pandas.Series"
		arr = "numpy.ndarray"
	)
	for _, e := range []entry{
		// pandas IO and frame constructors.
		{"pandas.read_csv", "filepath_or_buffer,sep=',',header='infer',index_col=None", df},
		{"pandas.read_json", "path_or_buf,orient=None", df},
		{"pandas.read_excel", "io,sheet_name=0", df},
		{"pandas.DataFrame", "data=None,index=None,columns=None", df},
		{"pandas.Series", "data=None,index=None", ser},
		{"pandas.concat", "objs,axis=0,join='outer'", df},
		{"pandas.merge", "left,right,how='inner',on=None", df},
		{"pandas.get_dummies", "data,prefix=None,drop_first=False", df},
		{"pandas.to_datetime", "arg,errors='raise'", ser},
		{"pandas.crosstab", "index,columns", df},
		{"pandas.pivot_table", "data,values=None,index=None", df},

		// sklearn preprocessing / impute.
		{"sklearn.impute.SimpleImputer", "missing_values=nan,strategy='mean',fill_value=None", "sklearn.impute.SimpleImputer"},
		{"sklearn.impute.KNNImputer", "missing_values=nan,n_neighbors=5,weights='uniform'", "sklearn.impute.KNNImputer"},
		{"sklearn.impute.IterativeImputer", "estimator=None,max_iter=10,tol=0.001", "sklearn.impute.IterativeImputer"},
		{"sklearn.preprocessing.StandardScaler", "copy=True,with_mean=True,with_std=True", "sklearn.preprocessing.StandardScaler"},
		{"sklearn.preprocessing.MinMaxScaler", "feature_range=(0, 1),copy=True", "sklearn.preprocessing.MinMaxScaler"},
		{"sklearn.preprocessing.RobustScaler", "with_centering=True,with_scaling=True,quantile_range=(25.0, 75.0)", "sklearn.preprocessing.RobustScaler"},
		{"sklearn.preprocessing.LabelEncoder", "", "sklearn.preprocessing.LabelEncoder"},
		{"sklearn.preprocessing.OneHotEncoder", "categories='auto',drop=None,sparse=True", "sklearn.preprocessing.OneHotEncoder"},
		{"sklearn.preprocessing.Normalizer", "norm='l2',copy=True", "sklearn.preprocessing.Normalizer"},
		{"sklearn.preprocessing.PolynomialFeatures", "degree=2,interaction_only=False", "sklearn.preprocessing.PolynomialFeatures"},

		// sklearn model selection and metrics.
		{"sklearn.model_selection.train_test_split", "arrays,test_size=0.25,train_size=None,random_state=None,shuffle=True", "tuple"},
		{"sklearn.model_selection.cross_val_score", "estimator,X,y=None,cv=5,scoring=None", arr},
		{"sklearn.model_selection.GridSearchCV", "estimator,param_grid,scoring=None,cv=5", "sklearn.model_selection.GridSearchCV"},
		{"sklearn.model_selection.KFold", "n_splits=5,shuffle=False,random_state=None", "sklearn.model_selection.KFold"},
		{"sklearn.metrics.accuracy_score", "y_true,y_pred,normalize=True", "float"},
		{"sklearn.metrics.f1_score", "y_true,y_pred,average='binary'", "float"},
		{"sklearn.metrics.precision_score", "y_true,y_pred,average='binary'", "float"},
		{"sklearn.metrics.recall_score", "y_true,y_pred,average='binary'", "float"},
		{"sklearn.metrics.roc_auc_score", "y_true,y_score", "float"},
		{"sklearn.metrics.mean_squared_error", "y_true,y_pred,squared=True", "float"},
		{"sklearn.metrics.confusion_matrix", "y_true,y_pred,labels=None", arr},
		{"sklearn.metrics.classification_report", "y_true,y_pred", "str"},

		// sklearn estimators.
		{"sklearn.linear_model.LogisticRegression", "penalty='l2',C=1.0,solver='lbfgs',max_iter=100,random_state=None", "sklearn.linear_model.LogisticRegression"},
		{"sklearn.linear_model.LinearRegression", "fit_intercept=True,copy_X=True", "sklearn.linear_model.LinearRegression"},
		{"sklearn.linear_model.Ridge", "alpha=1.0,fit_intercept=True", "sklearn.linear_model.Ridge"},
		{"sklearn.linear_model.Lasso", "alpha=1.0,fit_intercept=True", "sklearn.linear_model.Lasso"},
		{"sklearn.linear_model.SGDClassifier", "loss='hinge',penalty='l2',alpha=0.0001,max_iter=1000", "sklearn.linear_model.SGDClassifier"},
		{"sklearn.ensemble.RandomForestClassifier", "n_estimators=100,criterion='gini',max_depth=None,min_samples_split=2,min_samples_leaf=1,max_features='sqrt',random_state=None", "sklearn.ensemble.RandomForestClassifier"},
		{"sklearn.ensemble.RandomForestRegressor", "n_estimators=100,criterion='squared_error',max_depth=None,random_state=None", "sklearn.ensemble.RandomForestRegressor"},
		{"sklearn.ensemble.GradientBoostingClassifier", "loss='log_loss',learning_rate=0.1,n_estimators=100,max_depth=3", "sklearn.ensemble.GradientBoostingClassifier"},
		{"sklearn.ensemble.AdaBoostClassifier", "estimator=None,n_estimators=50,learning_rate=1.0", "sklearn.ensemble.AdaBoostClassifier"},
		{"sklearn.ensemble.ExtraTreesClassifier", "n_estimators=100,criterion='gini',max_depth=None", "sklearn.ensemble.ExtraTreesClassifier"},
		{"sklearn.tree.DecisionTreeClassifier", "criterion='gini',splitter='best',max_depth=None,min_samples_split=2,random_state=None", "sklearn.tree.DecisionTreeClassifier"},
		{"sklearn.tree.DecisionTreeRegressor", "criterion='squared_error',max_depth=None", "sklearn.tree.DecisionTreeRegressor"},
		{"sklearn.neighbors.KNeighborsClassifier", "n_neighbors=5,weights='uniform',algorithm='auto',p=2", "sklearn.neighbors.KNeighborsClassifier"},
		{"sklearn.naive_bayes.GaussianNB", "priors=None,var_smoothing=1e-09", "sklearn.naive_bayes.GaussianNB"},
		{"sklearn.svm.SVC", "C=1.0,kernel='rbf',degree=3,gamma='scale',random_state=None", "sklearn.svm.SVC"},
		{"sklearn.cluster.KMeans", "n_clusters=8,init='k-means++',n_init=10,max_iter=300,random_state=None", "sklearn.cluster.KMeans"},
		{"sklearn.decomposition.PCA", "n_components=None,whiten=False,random_state=None", "sklearn.decomposition.PCA"},

		// xgboost / lightgbm.
		{"xgboost.XGBClassifier", "max_depth=6,learning_rate=0.3,n_estimators=100,objective='binary:logistic',random_state=0", "xgboost.XGBClassifier"},
		{"xgboost.XGBRegressor", "max_depth=6,learning_rate=0.3,n_estimators=100,random_state=0", "xgboost.XGBRegressor"},
		{"lightgbm.LGBMClassifier", "num_leaves=31,learning_rate=0.1,n_estimators=100", "lightgbm.LGBMClassifier"},

		// numpy.
		{"numpy.array", "object,dtype=None", arr},
		{"numpy.log", "x", arr},
		{"numpy.log1p", "x", arr},
		{"numpy.sqrt", "x", arr},
		{"numpy.exp", "x", arr},
		{"numpy.mean", "a,axis=None", "float"},
		{"numpy.std", "a,axis=None", "float"},
		{"numpy.zeros", "shape,dtype=float", arr},
		{"numpy.ones", "shape,dtype=float", arr},
		{"numpy.arange", "start,stop=None,step=1", arr},
		{"numpy.where", "condition,x=None,y=None", arr},
		{"numpy.concatenate", "arrays,axis=0", arr},

		// matplotlib / seaborn / plotting (insignificant for semantics but
		// present in the library graph).
		{"matplotlib.pyplot.plot", "x,y=None", "None"},
		{"matplotlib.pyplot.show", "", "None"},
		{"matplotlib.pyplot.figure", "figsize=None", "matplotlib.figure.Figure"},
		{"matplotlib.pyplot.hist", "x,bins=None", "None"},
		{"matplotlib.pyplot.scatter", "x,y", "None"},
		{"seaborn.heatmap", "data,annot=False", "None"},
		{"seaborn.pairplot", "data,hue=None", "None"},
		{"seaborn.countplot", "x=None,data=None", "None"},
		{"scipy.stats.zscore", "a,axis=0", arr},
		{"scipy.stats.pearsonr", "x,y", "tuple"},
		{"wordcloud.WordCloud", "width=400,height=200", "wordcloud.WordCloud"},
		{"nltk.word_tokenize", "text", "list"},
		{"statsmodels.api.OLS", "endog,exog=None", "statsmodels.api.OLS"},
		{"IPython.display.display", "objs", "None"},
		{"plotly.express.scatter", "data_frame=None,x=None,y=None", "None"},
		{"plotly.express.line", "data_frame=None,x=None,y=None", "None"},
	} {
		d.add(e)
	}

	// DataFrame / Series methods.
	for _, m := range []struct {
		typ, name string
		e         entry
	}{
		{df, "drop", entry{df + ".drop", "labels=None,axis=0,columns=None,inplace=False", df}},
		{df, "dropna", entry{df + ".dropna", "axis=0,how='any',inplace=False", df}},
		{df, "fillna", entry{df + ".fillna", "value=None,method=None,axis=None,inplace=False", df}},
		{df, "interpolate", entry{df + ".interpolate", "method='linear',axis=0,inplace=False", df}},
		{df, "head", entry{df + ".head", "n=5", df}},
		{df, "tail", entry{df + ".tail", "n=5", df}},
		{df, "describe", entry{df + ".describe", "", df}},
		{df, "info", entry{df + ".info", "", "None"}},
		{df, "groupby", entry{df + ".groupby", "by=None,axis=0", "pandas.GroupBy"}},
		{df, "merge", entry{df + ".merge", "right,how='inner',on=None", df}},
		{df, "join", entry{df + ".join", "other,on=None,how='left'", df}},
		{df, "apply", entry{df + ".apply", "func,axis=0", df}},
		{df, "astype", entry{df + ".astype", "dtype", df}},
		{df, "copy", entry{df + ".copy", "deep=True", df}},
		{df, "sample", entry{df + ".sample", "n=None,frac=None,random_state=None", df}},
		{df, "sort_values", entry{df + ".sort_values", "by,ascending=True", df}},
		{df, "rename", entry{df + ".rename", "columns=None,inplace=False", df}},
		{df, "corr", entry{df + ".corr", "method='pearson'", df}},
		{df, "isnull", entry{df + ".isnull", "", df}},
		{df, "sum", entry{df + ".sum", "axis=None", ser}},
		{df, "mean", entry{df + ".mean", "axis=None", ser}},
		{df, "value_counts", entry{df + ".value_counts", "normalize=False", ser}},
		{df, "to_csv", entry{df + ".to_csv", "path_or_buf=None,index=True", "None"}},
		{df, "reset_index", entry{df + ".reset_index", "drop=False,inplace=False", df}},
		{df, "set_index", entry{df + ".set_index", "keys,inplace=False", df}},
		{df, "nunique", entry{df + ".nunique", "axis=0", ser}},
		{ser, "map", entry{ser + ".map", "arg", ser}},
		{ser, "apply", entry{ser + ".apply", "func", ser}},
		{ser, "fillna", entry{ser + ".fillna", "value=None,method=None,inplace=False", ser}},
		{ser, "astype", entry{ser + ".astype", "dtype", ser}},
		{ser, "value_counts", entry{ser + ".value_counts", "normalize=False", ser}},
		{ser, "mean", entry{ser + ".mean", "", "float"}},
		{ser, "unique", entry{ser + ".unique", "", arr}},
		{ser, "isnull", entry{ser + ".isnull", "", ser}},
		{"pandas.GroupBy", "agg", entry{"pandas.GroupBy.agg", "func", df}},
		{"pandas.GroupBy", "mean", entry{"pandas.GroupBy.mean", "", df}},
		{"pandas.GroupBy", "sum", entry{"pandas.GroupBy.sum", "", df}},
	} {
		d.addMethod(m.typ, m.name, m.e)
	}

	// Estimator/transformer methods shared across sklearn-like types.
	estimators := []string{
		"sklearn.impute.SimpleImputer", "sklearn.impute.KNNImputer",
		"sklearn.impute.IterativeImputer",
		"sklearn.preprocessing.StandardScaler", "sklearn.preprocessing.MinMaxScaler",
		"sklearn.preprocessing.RobustScaler", "sklearn.preprocessing.LabelEncoder",
		"sklearn.preprocessing.OneHotEncoder", "sklearn.preprocessing.Normalizer",
		"sklearn.preprocessing.PolynomialFeatures",
		"sklearn.linear_model.LogisticRegression", "sklearn.linear_model.LinearRegression",
		"sklearn.linear_model.Ridge", "sklearn.linear_model.Lasso",
		"sklearn.linear_model.SGDClassifier",
		"sklearn.ensemble.RandomForestClassifier", "sklearn.ensemble.RandomForestRegressor",
		"sklearn.ensemble.GradientBoostingClassifier", "sklearn.ensemble.AdaBoostClassifier",
		"sklearn.ensemble.ExtraTreesClassifier",
		"sklearn.tree.DecisionTreeClassifier", "sklearn.tree.DecisionTreeRegressor",
		"sklearn.neighbors.KNeighborsClassifier", "sklearn.naive_bayes.GaussianNB",
		"sklearn.svm.SVC", "sklearn.cluster.KMeans", "sklearn.decomposition.PCA",
		"sklearn.model_selection.GridSearchCV",
		"xgboost.XGBClassifier", "xgboost.XGBRegressor", "lightgbm.LGBMClassifier",
	}
	for _, t := range estimators {
		d.addMethod(t, "fit", entry{t + ".fit", "X,y=None", t})
		d.addMethod(t, "predict", entry{t + ".predict", "X", arr})
		d.addMethod(t, "fit_transform", entry{t + ".fit_transform", "X,y=None", arr})
		d.addMethod(t, "transform", entry{t + ".transform", "X", arr})
		d.addMethod(t, "score", entry{t + ".score", "X,y", "float"})
		d.addMethod(t, "predict_proba", entry{t + ".predict_proba", "X", arr})
	}
	return d
}

// insignificantCalls are statements the abstraction discards, per
// Section 3.1 ("statements that have no significance in the pipeline
// semantics, such as print(), DataFrame.head(), and summary()").
var insignificantCalls = map[string]bool{
	"print":                     true,
	"pandas.DataFrame.head":     true,
	"pandas.DataFrame.tail":     true,
	"pandas.DataFrame.info":     true,
	"pandas.DataFrame.describe": true,
	"summary":                   true,
	"display":                   true,
	"IPython.display.display":   true,
	"matplotlib.pyplot.show":    true,
}

// IsInsignificant reports whether a resolved call is semantically
// insignificant for pipeline abstraction.
func IsInsignificant(qualified string) bool { return insignificantCalls[qualified] }
