package pipeline

import (
	"fmt"
	"net/url"
	"runtime"
	"sort"
	"strings"
	"sync"

	"kglids/internal/rdf"
	"kglids/internal/schema"
	"kglids/internal/store"
)

// GraphBuilder turns abstractions into LiDS named graphs plus the shared
// library graph, and applies the Global Graph Linker to verify predicted
// dataset usage against the data global schema (Section 3.1).
type GraphBuilder struct {
	Linker  *schema.Linker // nil disables verification (all predictions kept)
	Workers int
}

// NewGraphBuilder returns a builder with the given linker.
func NewGraphBuilder(linker *schema.Linker) *GraphBuilder {
	return &GraphBuilder{Linker: linker, Workers: runtime.NumCPU()}
}

// PipelineIRI returns the named-graph IRI for a script ID.
func PipelineIRI(scriptID string) rdf.Term {
	return rdf.Resource("pipeline/" + escape(scriptID))
}

// StatementIRI returns the IRI of statement idx within a pipeline.
func StatementIRI(scriptID string, idx int) rdf.Term {
	return rdf.Resource(fmt.Sprintf("pipeline/%s/s%d", escape(scriptID), idx))
}

// LibraryIRI returns the IRI of a (sub)library node, e.g.
// "sklearn.ensemble.RandomForestClassifier".
func LibraryIRI(qualified string) rdf.Term {
	return rdf.Resource("library/" + strings.ReplaceAll(escape(qualified), ".", "/"))
}

func escape(s string) string {
	parts := strings.Split(s, "/")
	for i, p := range parts {
		parts[i] = url.PathEscape(p)
	}
	return strings.Join(parts, "/")
}

// AddLibraryHierarchy inserts the library-graph nodes for one qualified
// call ("sklearn.ensemble.RandomForestClassifier" yields Library →
// Package → Class/Function nodes chained by isSubLibraryOf edges),
// building the library hierarchy subgraph of Algorithm 1 line 2.
func AddLibraryHierarchy(st *store.Store, qualified string) {
	parts := strings.Split(qualified, ".")
	var quads []rdf.Quad
	for i := range parts {
		prefix := strings.Join(parts[:i+1], ".")
		node := LibraryIRI(prefix)
		class := rdf.ClassLibrary
		switch {
		case i == len(parts)-1 && i > 0:
			// Leaf: classes start upper-case, functions lower-case.
			if parts[i] != "" && parts[i][0] >= 'A' && parts[i][0] <= 'Z' {
				class = rdf.ClassClass
			} else {
				class = rdf.ClassFunction
			}
		case i > 0:
			class = rdf.ClassPackage
		}
		quads = append(quads,
			rdf.Q(node, rdf.RDFType, class, rdf.DefaultGraph),
			rdf.Q(node, rdf.PropName, rdf.String(prefix), rdf.DefaultGraph),
			rdf.Q(node, rdf.RDFSLabel, rdf.String(parts[i]), rdf.DefaultGraph),
		)
		if i > 0 {
			parent := LibraryIRI(strings.Join(parts[:i], "."))
			quads = append(quads, rdf.Q(node, rdf.PropSubLibraryOf, parent, rdf.DefaultGraph))
		}
	}
	st.AddBatch(quads)
}

// BuildGraph inserts one abstraction as a named graph (Algorithm 1
// line 18) and returns the number of triples emitted.
func (g *GraphBuilder) BuildGraph(st *store.Store, abs *Abstraction) int {
	if abs.ParseError != nil {
		return 0
	}
	graph := PipelineIRI(abs.Script.ID)
	var quads []rdf.Quad
	add := func(t rdf.Triple) { quads = append(quads, rdf.Quad{Triple: t, Graph: graph}) }

	pipe := graph
	add(rdf.T(pipe, rdf.RDFType, rdf.ClassPipeline))
	add(rdf.T(pipe, rdf.PropName, rdf.String(abs.Script.ID)))
	meta := abs.Script.Meta
	if meta.Author != "" {
		add(rdf.T(pipe, rdf.PropAuthor, rdf.String(meta.Author)))
	}
	if meta.Votes != 0 {
		add(rdf.T(pipe, rdf.PropVotes, rdf.Integer(int64(meta.Votes))))
	}
	if meta.Score != 0 {
		add(rdf.T(pipe, rdf.PropScore, rdf.Float(meta.Score)))
	}
	if meta.Task != "" {
		add(rdf.T(pipe, rdf.PropTask, rdf.String(meta.Task)))
	}
	if meta.Dataset != "" {
		add(rdf.T(pipe, rdf.PropUsesDataset, schema.DatasetIRI(meta.Dataset)))
	}

	var prev rdf.Term
	for _, stmt := range abs.Statements {
		s := StatementIRI(abs.Script.ID, stmt.Index)
		add(rdf.T(s, rdf.RDFType, rdf.ClassStatement))
		add(rdf.T(s, rdf.PropIsPartOf, pipe))
		add(rdf.T(s, rdf.PropStatementText, rdf.String(stmt.Text)))
		add(rdf.T(s, rdf.PropControlFlowType, rdf.String(stmt.Flow)))
		add(rdf.T(s, rdf.PropLineNumber, rdf.Integer(int64(stmt.Line))))
		if prev.Value != "" {
			add(rdf.T(prev, rdf.PropCodeFlow, s)) // code flow edge
		}
		prev = s
		for _, dst := range stmt.DataFlowTo {
			add(rdf.T(s, rdf.PropDataFlow, StatementIRI(abs.Script.ID, dst)))
		}
		for ci, call := range stmt.Calls {
			lib := LibraryIRI(call.Qualified)
			add(rdf.T(s, rdf.PropCallsFunction, lib))
			add(rdf.T(s, rdf.PropCallsLibrary, LibraryIRI(call.Library)))
			if call.ReturnType != "" {
				add(rdf.T(s, rdf.PropReturnType, rdf.String(call.ReturnType)))
			}
			for pi, p := range call.Params {
				pn := rdf.Resource(fmt.Sprintf("pipeline/%s/s%d/c%d/p%d", escape(abs.Script.ID), stmt.Index, ci, pi))
				add(rdf.T(pn, rdf.RDFType, rdf.ClassParameter))
				add(rdf.T(s, rdf.PropHasParameter, pn))
				add(rdf.T(pn, rdf.PropName, rdf.String(p.Name)))
				add(rdf.T(pn, rdf.PropParameterValue, rdf.String(p.Value)))
			}
		}
		// Predicted dataset usage, verified by the Graph Linker.
		var tableID string
		for _, path := range stmt.TableReads {
			if g.Linker != nil {
				verified, ok := g.Linker.VerifyTable(path)
				if !ok {
					continue // prediction dropped
				}
				tableID = verified
				add(rdf.T(s, rdf.PropReads, schema.TableIRI(verified)))
			} else {
				add(rdf.T(s, rdf.PropReads, schema.TableIRI(path)))
			}
		}
		if tableID == "" && g.Linker != nil && meta.Dataset != "" {
			// Column verification falls back to the pipeline's dataset
			// tables when the read is in an earlier statement.
			for _, path := range collectTableReads(abs) {
				if verified, ok := g.Linker.VerifyTable(path); ok {
					tableID = verified
					break
				}
			}
		}
		for _, col := range stmt.ColumnReads {
			if g.Linker != nil {
				if tableID == "" || !g.Linker.VerifyColumn(tableID, col) {
					continue // e.g. user-defined NormalizedAge is dropped
				}
				add(rdf.T(s, rdf.PropReadsColumn, schema.ColumnIRI(tableID+"/"+col)))
			} else {
				add(rdf.T(s, rdf.PropReadsColumn, rdf.Resource("predicted/"+escape(col))))
			}
		}
	}
	st.AddBatch(quads)
	// Library hierarchy goes to the default (shared) graph.
	for q := range abs.CallCounts {
		AddLibraryHierarchy(st, q)
	}
	return len(quads)
}

func collectTableReads(abs *Abstraction) []string {
	var out []string
	for _, s := range abs.Statements {
		out = append(out, s.TableReads...)
	}
	return out
}

// AbstractAll runs Algorithm 1 over a set of scripts in parallel and
// inserts all named graphs into st. It returns the abstractions in input
// order.
func (g *GraphBuilder) AbstractAll(st *store.Store, a *Abstractor, scripts []Script) []*Abstraction {
	out := make([]*Abstraction, len(scripts))
	workers := g.Workers
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				out[i] = a.Abstract(scripts[i])
			}
		}()
	}
	for i := range scripts {
		ch <- i
	}
	close(ch)
	wg.Wait()
	for _, abs := range out {
		g.BuildGraph(st, abs)
	}
	return out
}

// TopLibraries returns the top-k libraries by number of distinct pipelines
// calling them (the Figure 4 statistic).
func TopLibraries(abstractions []*Abstraction, k int) []LibraryCount {
	pipelinesPerLib := map[string]int{}
	for _, abs := range abstractions {
		seen := map[string]bool{}
		for q := range abs.CallCounts {
			lib := topLevel(q)
			if !seen[lib] {
				seen[lib] = true
				pipelinesPerLib[lib]++
			}
		}
	}
	out := make([]LibraryCount, 0, len(pipelinesPerLib))
	for lib, n := range pipelinesPerLib {
		out = append(out, LibraryCount{Library: lib, Pipelines: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pipelines != out[j].Pipelines {
			return out[i].Pipelines > out[j].Pipelines
		}
		return out[i].Library < out[j].Library
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// LibraryCount pairs a library with the number of pipelines using it.
type LibraryCount struct {
	Library   string
	Pipelines int
}
