package pipeline

import (
	"strings"
	"testing"

	"kglids/internal/dataframe"
	"kglids/internal/profiler"
	"kglids/internal/rdf"
	"kglids/internal/schema"
	"kglids/internal/sparql"
	"kglids/internal/store"
)

// figure3 is the paper's running example (Figure 3).
const figure3 = `import pandas as pd
from sklearn.impute import SimpleImputer
from sklearn.preprocessing import StandardScaler
from sklearn.model_selection import train_test_split
from sklearn.ensemble import RandomForestClassifier
from sklearn.metrics import accuracy_score

df = pd.read_csv('titanic/train.csv')
X, y = df.drop('Survived', axis=1), df['Survived']
imputer = SimpleImputer(strategy='most_frequent')
X['Sex'] = imputer.fit_transform(X['Sex'])
scaler = StandardScaler()
X['NormalizedAge'] = scaler.fit_transform(X['Age'])
X_train, y_train, X_test, y_test = train_test_split(X, y, 0.2)
clf = RandomForestClassifier(50, max_depth=10)
clf.fit(X_train, y_train)
print(accuracy_score(y_test, clf.predict(X_test)))
`

func abstractFigure3(t *testing.T) *Abstraction {
	t.Helper()
	a := NewAbstractor()
	abs := a.Abstract(Script{ID: "kaggle/titanic/p1", Source: figure3, Meta: Metadata{Dataset: "titanic", Votes: 120, Task: "classification"}})
	if abs.ParseError != nil {
		t.Fatal(abs.ParseError)
	}
	return abs
}

func findStmt(abs *Abstraction, substr string) *Statement {
	for _, s := range abs.Statements {
		if strings.Contains(s.Text, substr) {
			return s
		}
	}
	return nil
}

func TestAbstractResolvesAliases(t *testing.T) {
	abs := abstractFigure3(t)
	read := findStmt(abs, "read_csv")
	if read == nil {
		t.Fatal("read_csv statement missing")
	}
	if len(read.Calls) != 1 || read.Calls[0].Qualified != "pandas.read_csv" {
		t.Fatalf("read_csv resolution = %+v", read.Calls)
	}
	if read.Calls[0].ReturnType != "pandas.DataFrame" {
		t.Errorf("return type = %q", read.Calls[0].ReturnType)
	}
	if len(read.TableReads) != 1 || read.TableReads[0] != "titanic/train.csv" {
		t.Errorf("table reads = %v", read.TableReads)
	}
}

func TestDocumentationEnrichment(t *testing.T) {
	abs := abstractFigure3(t)
	rf := findStmt(abs, "clf = RandomForestClassifier")
	if rf == nil {
		t.Fatal("RF statement missing")
	}
	call := rf.Calls[0]
	byName := map[string]Param{}
	for _, p := range call.Params {
		byName[p.Name] = p
	}
	// Implicit positional parameter: 50 → n_estimators.
	if p, ok := byName["n_estimators"]; !ok || p.Value != "50" || !p.Implicit {
		t.Errorf("n_estimators = %+v", byName["n_estimators"])
	}
	// Explicit keyword.
	if p, ok := byName["max_depth"]; !ok || p.Value != "10" || p.Implicit {
		t.Errorf("max_depth = %+v", byName["max_depth"])
	}
	// Unspecified default completed from docs.
	if p, ok := byName["criterion"]; !ok || p.Value != "'gini'" || !p.Default {
		t.Errorf("criterion = %+v", byName["criterion"])
	}
}

func TestMethodResolutionViaTypes(t *testing.T) {
	abs := abstractFigure3(t)
	drop := findStmt(abs, "df.drop")
	if drop == nil {
		t.Fatal("drop statement missing")
	}
	var found bool
	for _, c := range drop.Calls {
		if c.Qualified == "pandas.DataFrame.drop" {
			found = true
		}
	}
	if !found {
		t.Errorf("df.drop not resolved through DataFrame type; calls = %+v", drop.Calls)
	}
	// imputer.fit_transform resolved through SimpleImputer type.
	ft := findStmt(abs, "imputer.fit_transform")
	if ft == nil {
		t.Fatal("fit_transform statement missing")
	}
	found = false
	for _, c := range ft.Calls {
		if c.Qualified == "sklearn.impute.SimpleImputer.fit_transform" {
			found = true
		}
	}
	if !found {
		t.Errorf("fit_transform not resolved; calls = %+v", ft.Calls)
	}
}

func TestColumnReadsPredicted(t *testing.T) {
	abs := abstractFigure3(t)
	// X['Sex'] = imputer.fit_transform(X['Sex'])
	sex := findStmt(abs, "X['Sex']")
	if sex == nil {
		t.Fatal("Sex statement missing")
	}
	if !contains(sex.ColumnReads, "Sex") {
		t.Errorf("column reads = %v", sex.ColumnReads)
	}
	// X['NormalizedAge'] predicted (will be dropped by linker later).
	norm := findStmt(abs, "NormalizedAge")
	if norm == nil || !contains(norm.ColumnReads, "NormalizedAge") {
		t.Error("NormalizedAge not predicted")
	}
	if !contains(norm.ColumnReads, "Age") {
		t.Errorf("Age read missing: %v", norm.ColumnReads)
	}
}

func TestInsignificantStatementsDiscarded(t *testing.T) {
	abs := abstractFigure3(t)
	for _, s := range abs.Statements {
		if strings.HasPrefix(s.Text, "print(") {
			t.Error("print() statement not discarded")
		}
	}
	// df.head() alone should be discarded.
	a := NewAbstractor()
	abs2 := a.Abstract(Script{ID: "p", Source: "import pandas as pd\ndf = pd.read_csv('x.csv')\ndf.head()\n"})
	for _, s := range abs2.Statements {
		if strings.Contains(s.Text, "head") {
			t.Error("df.head() not discarded")
		}
	}
}

func TestDataFlow(t *testing.T) {
	abs := abstractFigure3(t)
	read := findStmt(abs, "read_csv")
	drop := findStmt(abs, "df.drop")
	// df defined by read_csv flows to the drop statement.
	if !containsInt(read.DataFlowTo, drop.Index) {
		t.Errorf("read_csv.DataFlowTo = %v, want to include %d", read.DataFlowTo, drop.Index)
	}
	fit := findStmt(abs, "clf.fit")
	rf := findStmt(abs, "clf = RandomForestClassifier")
	if !containsInt(rf.DataFlowTo, fit.Index) {
		t.Errorf("clf def should flow to clf.fit: %v", rf.DataFlowTo)
	}
}

func TestControlFlowTypes(t *testing.T) {
	src := `import pandas as pd
for i in range(3):
    x = i
if x > 1:
    y = 2
def f(a):
    return a
`
	a := NewAbstractor()
	abs := a.Abstract(Script{ID: "p", Source: src})
	if abs.ParseError != nil {
		t.Fatal(abs.ParseError)
	}
	flows := map[string]string{}
	for _, s := range abs.Statements {
		flows[s.Text] = s.Flow
	}
	if flows["import pandas as pd"] != "import" {
		t.Errorf("import flow = %q", flows["import pandas as pd"])
	}
	if flows["x = i"] != "loop" {
		t.Errorf("loop body flow = %q", flows["x = i"])
	}
	if flows["y = 2"] != "conditional" {
		t.Errorf("conditional body flow = %q", flows["y = 2"])
	}
	if flows["return a"] != "user_defined_function" {
		t.Errorf("function body flow = %q", flows["return a"])
	}
}

func TestParseErrorRecorded(t *testing.T) {
	a := NewAbstractor()
	abs := a.Abstract(Script{ID: "bad", Source: "x = 'unterminated\n"})
	if abs.ParseError == nil {
		t.Error("parse error not recorded")
	}
	st := store.New()
	g := NewGraphBuilder(nil)
	if n := g.BuildGraph(st, abs); n != 0 {
		t.Error("triples emitted for unparseable script")
	}
}

// buildSchemaLinker profiles a small titanic-like table so the Graph Linker
// can verify predictions.
func buildSchemaLinker(t *testing.T) *schema.Linker {
	t.Helper()
	df := dataframe.New("train.csv")
	for _, col := range []struct {
		name string
		vals []string
	}{
		{"Sex", []string{"male", "female", "male"}},
		{"Age", []string{"22", "38", "26"}},
		{"Survived", []string{"0", "1", "1"}},
	} {
		s := &dataframe.Series{Name: col.name}
		for _, v := range col.vals {
			s.Cells = append(s.Cells, dataframe.ParseCell(v))
		}
		df.AddColumn(s)
	}
	p := profiler.New()
	return schema.NewLinker(p.ProfileTable("titanic", df))
}

func TestGraphLinkerVerification(t *testing.T) {
	st := store.New()
	abs := abstractFigure3(t)
	g := NewGraphBuilder(buildSchemaLinker(t))
	g.BuildGraph(st, abs)

	eng := sparql.NewEngine(st)
	// The verified read edge points at the titanic table.
	res, err := eng.Query(`SELECT ?s ?t WHERE { GRAPH ?g { ?s kglids:reads ?t . } }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !strings.Contains(res.Rows[0]["t"].Value, "titanic/train.csv") {
		t.Fatalf("reads edges = %v", res.Rows)
	}
	// Column reads: Sex, Age, Survived verified; NormalizedAge dropped.
	res, err = eng.Query(`SELECT DISTINCT ?c WHERE { GRAPH ?g { ?s kglids:readsColumn ?c . } }`)
	if err != nil {
		t.Fatal(err)
	}
	var cols []string
	for _, r := range res.Rows {
		cols = append(cols, r["c"].Local())
	}
	for _, want := range []string{"Sex", "Age", "Survived"} {
		if !contains(cols, want) {
			t.Errorf("verified column %s missing from %v", want, cols)
		}
	}
	if contains(cols, "NormalizedAge") {
		t.Error("user-defined NormalizedAge should have been dropped by the linker")
	}
}

func TestNamedGraphIsolation(t *testing.T) {
	st := store.New()
	a := NewAbstractor()
	g := NewGraphBuilder(nil)
	abs1 := a.Abstract(Script{ID: "p1", Source: "import pandas as pd\ndf = pd.read_csv('a.csv')\n"})
	abs2 := a.Abstract(Script{ID: "p2", Source: "import pandas as pd\ndf = pd.read_csv('b.csv')\n"})
	g.BuildGraph(st, abs1)
	g.BuildGraph(st, abs2)
	if st.GraphLen(PipelineIRI("p1")) == 0 || st.GraphLen(PipelineIRI("p2")) == 0 {
		t.Fatal("named graphs empty")
	}
	// Statements of p1 are not visible when restricted to p2's graph.
	got := st.Match(StatementIRI("p1", 0), store.Wildcard, store.Wildcard, PipelineIRI("p2"))
	if len(got) != 0 {
		t.Error("cross-graph leakage")
	}
}

func TestLibraryGraph(t *testing.T) {
	st := store.New()
	AddLibraryHierarchy(st, "sklearn.ensemble.RandomForestClassifier")
	eng := sparql.NewEngine(st)
	res, err := eng.Query(`SELECT ?n WHERE { ?n a kglids:Class . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("class nodes = %d", len(res.Rows))
	}
	res, err = eng.Query(`SELECT ?n WHERE { ?n a kglids:Package . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 { // sklearn.ensemble
		t.Fatalf("package nodes = %d", len(res.Rows))
	}
	// Hierarchy chain: RandomForestClassifier -> ensemble -> sklearn.
	res, err = eng.Query(`SELECT ?p WHERE { ?n kglids:isSubLibraryOf ?p . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("hierarchy edges = %d", len(res.Rows))
	}
}

func TestAbstractAllAndTopLibraries(t *testing.T) {
	st := store.New()
	a := NewAbstractor()
	g := NewGraphBuilder(nil)
	scripts := []Script{
		{ID: "p1", Source: "import pandas as pd\nimport sklearn\ndf = pd.read_csv('x.csv')\n"},
		{ID: "p2", Source: "import pandas as pd\ndf = pd.read_csv('y.csv')\n"},
		{ID: "p3", Source: "import numpy as np\nx = np.log(5)\n"},
	}
	abss := g.AbstractAll(st, a, scripts)
	if len(abss) != 3 {
		t.Fatalf("abstractions = %d", len(abss))
	}
	top := TopLibraries(abss, 2)
	if len(top) != 2 || top[0].Library != "pandas" || top[0].Pipelines != 2 {
		t.Errorf("top = %+v", top)
	}
}

func TestStatementMetadataInGraph(t *testing.T) {
	st := store.New()
	abs := abstractFigure3(t)
	NewGraphBuilder(nil).BuildGraph(st, abs)
	eng := sparql.NewEngine(st)
	res, err := eng.Query(`
		SELECT ?p WHERE {
			GRAPH ?g { ?p a kglids:Pipeline ; kglids:votes ?v . FILTER(?v = 120) }
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("pipeline metadata rows = %d", len(res.Rows))
	}
	// Parameters recorded with names and values.
	res, err = eng.Query(`
		SELECT ?pn ?pv WHERE {
			GRAPH ?g {
				?s kglids:hasParameter ?param .
				?param kglids:name ?pn ; kglids:parameterValue ?pv .
				FILTER(?pn = "max_depth")
			}
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("max_depth parameter not queryable")
	}
}

func TestCodeFlowChain(t *testing.T) {
	st := store.New()
	abs := abstractFigure3(t)
	NewGraphBuilder(nil).BuildGraph(st, abs)
	n := st.CountMatch(store.Wildcard, rdf.PropCodeFlow, store.Wildcard, rdf.DefaultGraph)
	if n != len(abs.Statements)-1 {
		t.Errorf("code flow edges = %d, want %d", n, len(abs.Statements)-1)
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

func containsInt(xs []int, want int) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
