// Package transform implements KGLiDS's on-demand data transformation
// (paper Section 4.3): table-level scaling transformations (StandardScaler,
// MinMaxScaler, RobustScaler), column-level unary transformations (log,
// sqrt), and the two GNN recommenders that choose them — scaling first,
// then unary per feature, per the paper's two-step formulation.
package transform

import (
	"fmt"
	"math"
	"sort"

	"kglids/internal/dataframe"
	"kglids/internal/embed"
	"kglids/internal/gnn"
	"kglids/internal/profiler"
)

// ScalerOp names a table-level scaling transformation.
type ScalerOp string

// The three scaling transformations of Section 4.3.
const (
	ScalerStandard ScalerOp = "StandardScaler"
	ScalerMinMax   ScalerOp = "MinMaxScaler"
	ScalerRobust   ScalerOp = "RobustScaler"
)

// Scalers lists scaling ops in class-index order.
var Scalers = []ScalerOp{ScalerStandard, ScalerMinMax, ScalerRobust}

// UnaryOp names a column-level unary transformation.
type UnaryOp string

// The unary transformations of Section 4.3 plus the no-op class.
const (
	UnaryNone UnaryOp = "none"
	UnaryLog  UnaryOp = "log"
	UnarySqrt UnaryOp = "sqrt"
)

// Unaries lists unary ops in class-index order.
var Unaries = []UnaryOp{UnaryNone, UnaryLog, UnarySqrt}

// ScalerClass returns the class index of a scaling op.
func ScalerClass(op ScalerOp) int {
	for i, o := range Scalers {
		if o == op {
			return i
		}
	}
	return -1
}

// UnaryClass returns the class index of a unary op.
func UnaryClass(op UnaryOp) int {
	for i, o := range Unaries {
		if o == op {
			return i
		}
	}
	return -1
}

// ApplyScaler scales every numeric column of df (excluding target) and
// returns a transformed copy.
func ApplyScaler(op ScalerOp, df *dataframe.DataFrame, target string) (*dataframe.DataFrame, error) {
	out := df.Clone()
	for i := 0; i < out.NumCols(); i++ {
		col := out.ColumnAt(i)
		if col.Name == target || !col.IsNumeric() {
			continue
		}
		switch op {
		case ScalerStandard:
			mean, std := col.Mean(), col.Std()
			if std == 0 {
				std = 1
			}
			scaleColumn(col, func(v float64) float64 { return (v - mean) / std })
		case ScalerMinMax:
			lo, hi := col.MinMax()
			span := hi - lo
			if span == 0 {
				span = 1
			}
			scaleColumn(col, func(v float64) float64 { return (v - lo) / span })
		case ScalerRobust:
			med := col.Quantile(0.5)
			iqr := col.Quantile(0.75) - col.Quantile(0.25)
			if iqr == 0 {
				iqr = 1
			}
			scaleColumn(col, func(v float64) float64 { return (v - med) / iqr })
		default:
			return nil, fmt.Errorf("transform: unknown scaler %q", op)
		}
	}
	return out, nil
}

// ApplyUnary applies a unary transformation to one column of df in a copy.
// log uses log1p semantics on shifted values so non-positive inputs stay
// defined; sqrt shifts similarly.
func ApplyUnary(op UnaryOp, df *dataframe.DataFrame, column string) (*dataframe.DataFrame, error) {
	out := df.Clone()
	col := out.Column(column)
	if col == nil {
		return nil, fmt.Errorf("transform: unknown column %q", column)
	}
	if !col.IsNumeric() {
		return out, nil
	}
	lo, _ := col.MinMax()
	shift := 0.0
	if lo < 0 {
		shift = -lo
	}
	switch op {
	case UnaryNone:
	case UnaryLog:
		scaleColumn(col, func(v float64) float64 { return math.Log1p(v + shift) })
	case UnarySqrt:
		scaleColumn(col, func(v float64) float64 { return math.Sqrt(v + shift) })
	default:
		return nil, fmt.Errorf("transform: unknown unary op %q", op)
	}
	return out, nil
}

func scaleColumn(col *dataframe.Series, f func(float64) float64) {
	for i, c := range col.Cells {
		if c.Kind == dataframe.Number {
			col.Cells[i] = dataframe.NumberCell(f(c.F))
		}
	}
}

// ScalerExample is one training sample for the table-transformation model:
// a 1800-d table embedding and the scaler applied by its pipeline.
type ScalerExample struct {
	Embedding embed.Vector
	Op        ScalerOp
}

// UnaryExample is one training sample for the column-transformation model:
// a 300-d column embedding and the unary op applied.
type UnaryExample struct {
	Embedding embed.Vector
	Op        UnaryOp
}

// Recommender holds the two GNN models of Section 4.3.
type Recommender struct {
	scalerModel *gnn.Model
	unaryModel  *gnn.Model
	profiler    *profiler.Profiler
}

// Train fits both models from mined examples.
func Train(scalerExamples []ScalerExample, unaryExamples []UnaryExample) *Recommender {
	r := &Recommender{profiler: profiler.New()}
	// Table model: 1800-d embeddings, one edge table→scaler-op node.
	gs := gnn.NewGraph(len(scalerExamples)+len(Scalers), embed.TableDim)
	for i, ex := range scalerExamples {
		copy(gs.Features[i], ex.Embedding)
		gs.Labels[i] = ScalerClass(ex.Op)
		gs.AddEdge(i, len(scalerExamples)+ScalerClass(ex.Op))
	}
	r.scalerModel = gnn.NewModel(gnn.DefaultConfig(embed.TableDim, len(Scalers)))
	r.scalerModel.Train(gs)
	// Column model: 300-d embeddings, no aggregation needed (Section 4.3:
	// "each column was directly associated with its embedding of size
	// 300").
	gu := gnn.NewGraph(len(unaryExamples), embed.Dim)
	for i, ex := range unaryExamples {
		copy(gu.Features[i], ex.Embedding)
		gu.Labels[i] = UnaryClass(ex.Op)
	}
	r.unaryModel = gnn.NewModel(gnn.DefaultConfig(embed.Dim, len(Unaries)))
	r.unaryModel.Train(gu)
	return r
}

// TableEmbedding computes the 1800-d embedding of a frame for the scaler
// model (all columns contribute, per type).
func TableEmbedding(p *profiler.Profiler, df *dataframe.DataFrame) embed.Vector {
	byType := map[embed.Type][]embed.Vector{}
	for i := 0; i < df.NumCols(); i++ {
		cp := p.ProfileColumn(df.Name, df.Name, df.ColumnAt(i))
		byType[cp.Type] = append(byType[cp.Type], cp.Embed)
	}
	return embed.TableEmbedding(byType)
}

// ScalerRecommendation pairs a scaler with model confidence.
type ScalerRecommendation struct {
	Op    ScalerOp
	Score float64
}

// UnaryRecommendation pairs a column with its recommended unary op.
type UnaryRecommendation struct {
	Column string
	Op     UnaryOp
	Score  float64
}

// RecommendScaler ranks scaling transformations for df.
func (r *Recommender) RecommendScaler(df *dataframe.DataFrame) []ScalerRecommendation {
	probs := r.scalerModel.PredictVector(TableEmbedding(r.profiler, df))
	out := make([]ScalerRecommendation, len(Scalers))
	for i, op := range Scalers {
		out[i] = ScalerRecommendation{Op: op, Score: probs[i]}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// RecommendUnary returns the best unary transformation per numeric feature
// column of df (target excluded).
func (r *Recommender) RecommendUnary(df *dataframe.DataFrame, target string) []UnaryRecommendation {
	var out []UnaryRecommendation
	for i := 0; i < df.NumCols(); i++ {
		col := df.ColumnAt(i)
		if col.Name == target || !col.IsNumeric() {
			continue
		}
		cp := r.profiler.ProfileColumn(df.Name, df.Name, col)
		probs := r.unaryModel.PredictVector(cp.Embed)
		best := gnn.Argmax(probs)
		out = append(out, UnaryRecommendation{Column: col.Name, Op: Unaries[best], Score: probs[best]})
	}
	return out
}

// Transform runs the two-step recommendation of Section 4.3 — scaling
// first, then per-column unary transforms — and applies both.
func (r *Recommender) Transform(df *dataframe.DataFrame, target string) (*dataframe.DataFrame, ScalerOp, []UnaryRecommendation, error) {
	scalers := r.RecommendScaler(df)
	out, err := ApplyScaler(scalers[0].Op, df, target)
	if err != nil {
		return nil, "", nil, err
	}
	unaries := r.RecommendUnary(df, target)
	for _, u := range unaries {
		if u.Op == UnaryNone {
			continue
		}
		out, err = ApplyUnary(u.Op, out, u.Column)
		if err != nil {
			return nil, "", nil, err
		}
	}
	return out, scalers[0].Op, unaries, nil
}
