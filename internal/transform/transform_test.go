package transform

import (
	"math"
	"math/rand"
	"testing"

	"kglids/internal/dataframe"
	"kglids/internal/embed"
	"kglids/internal/profiler"
)

func numericFrame(vals ...float64) *dataframe.DataFrame {
	df := dataframe.New("t")
	s := &dataframe.Series{Name: "x"}
	for _, v := range vals {
		s.Cells = append(s.Cells, dataframe.NumberCell(v))
	}
	df.AddColumn(s)
	y := &dataframe.Series{Name: "target"}
	for range vals {
		y.Cells = append(y.Cells, dataframe.NumberCell(1))
	}
	df.AddColumn(y)
	return df
}

func TestStandardScaler(t *testing.T) {
	df := numericFrame(1, 2, 3, 4, 5)
	out, err := ApplyScaler(ScalerStandard, df, "target")
	if err != nil {
		t.Fatal(err)
	}
	col := out.Column("x")
	if m := col.Mean(); math.Abs(m) > 1e-9 {
		t.Errorf("scaled mean = %v", m)
	}
	if s := col.Std(); math.Abs(s-1) > 1e-9 {
		t.Errorf("scaled std = %v", s)
	}
	// Target untouched.
	if out.Column("target").Cells[0].F != 1 {
		t.Error("target column scaled")
	}
	// Original untouched.
	if df.Column("x").Cells[0].F != 1 {
		t.Error("input mutated")
	}
}

func TestMinMaxScaler(t *testing.T) {
	df := numericFrame(10, 20, 30)
	out, _ := ApplyScaler(ScalerMinMax, df, "target")
	col := out.Column("x")
	lo, hi := col.MinMax()
	if lo != 0 || hi != 1 {
		t.Errorf("minmax range = [%v, %v]", lo, hi)
	}
	if col.Cells[1].F != 0.5 {
		t.Errorf("mid = %v", col.Cells[1].F)
	}
}

func TestRobustScaler(t *testing.T) {
	df := numericFrame(1, 2, 3, 4, 100) // outlier
	out, _ := ApplyScaler(ScalerRobust, df, "target")
	col := out.Column("x")
	// Median (3) maps to 0.
	if got := col.Cells[2].F; math.Abs(got) > 1e-9 {
		t.Errorf("median scaled to %v", got)
	}
}

func TestConstantColumnScaling(t *testing.T) {
	df := numericFrame(5, 5, 5)
	for _, op := range Scalers {
		out, err := ApplyScaler(op, df, "target")
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range out.Column("x").Cells {
			if math.IsNaN(c.F) || math.IsInf(c.F, 0) {
				t.Errorf("%s produced %v on constant column", op, c.F)
			}
		}
	}
}

func TestApplyUnary(t *testing.T) {
	df := numericFrame(0, 1, math.E-1)
	out, err := ApplyUnary(UnaryLog, df, "x")
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Column("x").Cells[2].F; math.Abs(got-1) > 1e-9 {
		t.Errorf("log1p(e-1) = %v", got)
	}
	out, _ = ApplyUnary(UnarySqrt, numericFrame(4, 9), "x")
	if out.Column("x").Cells[0].F != 2 || out.Column("x").Cells[1].F != 3 {
		t.Error("sqrt wrong")
	}
	// Negative values are shifted, not NaN.
	out, _ = ApplyUnary(UnaryLog, numericFrame(-5, 0, 5), "x")
	for _, c := range out.Column("x").Cells {
		if math.IsNaN(c.F) {
			t.Error("log of negative produced NaN")
		}
	}
	// none is identity.
	out, _ = ApplyUnary(UnaryNone, numericFrame(1, 2), "x")
	if out.Column("x").Cells[1].F != 2 {
		t.Error("none not identity")
	}
	if _, err := ApplyUnary(UnaryLog, df, "nope"); err == nil {
		t.Error("unknown column should error")
	}
}

func TestNonNumericColumnsUntouched(t *testing.T) {
	df := dataframe.New("t")
	s := &dataframe.Series{Name: "name"}
	for _, v := range []string{"a", "b"} {
		s.Cells = append(s.Cells, dataframe.TextCell(v))
	}
	df.AddColumn(s)
	out, err := ApplyScaler(ScalerStandard, df, "")
	if err != nil {
		t.Fatal(err)
	}
	if out.Column("name").Cells[0].S != "a" {
		t.Error("text column modified")
	}
	out2, err := ApplyUnary(UnaryLog, df, "name")
	if err != nil {
		t.Fatal(err)
	}
	if out2.Column("name").Cells[0].S != "a" {
		t.Error("unary modified text column")
	}
}

func TestClassIndexes(t *testing.T) {
	for i, op := range Scalers {
		if ScalerClass(op) != i {
			t.Errorf("ScalerClass(%s) = %d", op, ScalerClass(op))
		}
	}
	for i, op := range Unaries {
		if UnaryClass(op) != i {
			t.Errorf("UnaryClass(%s) = %d", op, UnaryClass(op))
		}
	}
	if ScalerClass("x") != -1 || UnaryClass("x") != -1 {
		t.Error("unknown class not -1")
	}
}

func trainingExamples(t *testing.T) ([]ScalerExample, []UnaryExample) {
	t.Helper()
	p := profiler.New()
	rng := rand.New(rand.NewSource(9))
	var se []ScalerExample
	var ue []UnaryExample
	colr := embed.NewCoLR()
	for i := 0; i < 60; i++ {
		// Scaler examples: scale of values correlates with scaler class.
		op := Scalers[i%len(Scalers)]
		df := dataframe.New("t")
		s := &dataframe.Series{Name: "v"}
		scale := math.Pow(100, float64(ScalerClass(op)))
		for r := 0; r < 30; r++ {
			s.Cells = append(s.Cells, dataframe.NumberCell(rng.Float64()*scale))
		}
		df.AddColumn(s)
		se = append(se, ScalerExample{Embedding: TableEmbedding(p, df), Op: op})

		// Unary examples: skewed columns get log, moderate get sqrt,
		// centered get none.
		uop := Unaries[i%len(Unaries)]
		vals := make([]string, 40)
		for r := range vals {
			switch uop {
			case UnaryLog:
				vals[r] = formatF(math.Exp(rng.Float64() * 10)) // heavy tail
			case UnarySqrt:
				vals[r] = formatF(rng.Float64() * 1000)
			default:
				vals[r] = formatF(rng.NormFloat64())
			}
		}
		ue = append(ue, UnaryExample{Embedding: colr.EncodeColumn(vals, embed.TypeFloat), Op: uop})
	}
	return se, ue
}

func formatF(f float64) string {
	return dataframe.NumberCell(f).S
}

func TestRecommenderEndToEnd(t *testing.T) {
	se, ue := trainingExamples(t)
	rec := Train(se, ue)
	df := numericFrame(1, 5, 10, 50, 100, 500)
	scalers := rec.RecommendScaler(df)
	if len(scalers) != 3 {
		t.Fatalf("scaler recs = %d", len(scalers))
	}
	sum := 0.0
	for _, s := range scalers {
		sum += s.Score
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("scaler scores sum = %v", sum)
	}
	unaries := rec.RecommendUnary(df, "target")
	if len(unaries) != 1 || unaries[0].Column != "x" {
		t.Fatalf("unary recs = %+v", unaries)
	}
	out, scaler, _, err := rec.Transform(df, "target")
	if err != nil {
		t.Fatal(err)
	}
	if scaler == "" || out.NumRows() != df.NumRows() {
		t.Error("transform output malformed")
	}
	// Values actually changed.
	if out.Column("x").Cells[0].F == df.Column("x").Cells[0].F {
		t.Error("transform did not modify features")
	}
}

func TestRecommenderLearnsScale(t *testing.T) {
	se, ue := trainingExamples(t)
	rec := Train(se, ue)
	correct := 0
	for i, ex := range se {
		if i >= 15 {
			break
		}
		probs := rec.scalerModel.PredictVector(ex.Embedding)
		if Scalers[argmax(probs)] == ex.Op {
			correct++
		}
	}
	if correct < 9 {
		t.Errorf("scaler model recovered %d/15", correct)
	}
}

func argmax(p []float64) int {
	best := 0
	for i := range p {
		if p[i] > p[best] {
			best = i
		}
	}
	return best
}
