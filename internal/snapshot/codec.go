package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"kglids/internal/embed"
	"kglids/internal/rdf"
)

// writer accumulates the snapshot payload. All integers are unsigned
// varints unless noted; floats are IEEE-754 bits, little-endian; strings
// and vectors are length-prefixed.
type writer struct {
	buf bytes.Buffer
	tmp [binary.MaxVarintLen64]byte
}

func (w *writer) u8(v byte) { w.buf.WriteByte(v) }
func (w *writer) uvarint(v uint64) {
	n := binary.PutUvarint(w.tmp[:], v)
	w.buf.Write(w.tmp[:n])
}
func (w *writer) varint(v int64) {
	n := binary.PutVarint(w.tmp[:], v)
	w.buf.Write(w.tmp[:n])
}
func (w *writer) uint(v int) { w.uvarint(uint64(v)) }
func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf.WriteString(s)
}
func (w *writer) f64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	w.buf.Write(b[:])
}
func (w *writer) vec(v embed.Vector) {
	w.uvarint(uint64(len(v)))
	for _, f := range v {
		w.f64(f)
	}
}

// term encodes an RDF term, recursing into quoted triples.
func (w *writer) term(t rdf.Term) {
	w.u8(byte(t.Kind))
	switch t.Kind {
	case rdf.KindLiteral:
		w.str(t.Value)
		w.str(t.Datatype)
	case rdf.KindQuoted:
		w.term(t.Quoted.Subject)
		w.term(t.Quoted.Predicate)
		w.term(t.Quoted.Object)
	default: // IRI, blank node
		w.str(t.Value)
	}
}

// reader decodes a payload. The first malformed read latches err; all
// subsequent reads return zero values, so decoders can run to completion
// and check err once.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snapshot: "+format, args...)
	}
}

func (r *reader) u8() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("truncated payload at byte %d", r.off)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint at byte %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint at byte %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// count reads a collection length and sanity-bounds it against the bytes
// remaining (each element needs at least one byte), so a corrupted length
// fails fast instead of attempting a huge allocation.
func (r *reader) count() int {
	v := r.uvarint()
	if r.err == nil && v > uint64(len(r.b)-r.off) {
		r.fail("implausible count %d with %d bytes left", v, len(r.b)-r.off)
		return 0
	}
	return int(v)
}

func (r *reader) uint() int { return int(r.uvarint()) }

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("string length %d exceeds remaining %d bytes", n, len(r.b)-r.off)
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *reader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b)-r.off < 8 {
		r.fail("truncated float at byte %d", r.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *reader) vec() embed.Vector {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off)/8 {
		r.fail("vector length %d exceeds remaining bytes", n)
		return nil
	}
	v := make(embed.Vector, n)
	b := r.b[r.off:]
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	r.off += 8 * int(n)
	return v
}

// maxQuotedDepth bounds quoted-triple nesting so a corrupted kind byte
// cannot recurse unboundedly.
const maxQuotedDepth = 16

func (r *reader) term(depth int) rdf.Term {
	if depth > maxQuotedDepth {
		r.fail("quoted-triple nesting deeper than %d", maxQuotedDepth)
		return rdf.Term{}
	}
	kind := rdf.TermKind(r.u8())
	switch kind {
	case rdf.KindIRI, rdf.KindBlank:
		return rdf.Term{Kind: kind, Value: r.str()}
	case rdf.KindLiteral:
		return rdf.Term{Kind: kind, Value: r.str(), Datatype: r.str()}
	case rdf.KindQuoted:
		t := rdf.Triple{
			Subject:   r.term(depth + 1),
			Predicate: r.term(depth + 1),
			Object:    r.term(depth + 1),
		}
		return rdf.Term{Kind: kind, Quoted: &t}
	default:
		r.fail("unknown term kind %d at byte %d", kind, r.off-1)
		return rdf.Term{}
	}
}
