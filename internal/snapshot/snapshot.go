// Package snapshot persists a bootstrapped KGLiDS platform to a single
// versioned binary file and reconstructs a query-ready platform from it in
// milliseconds, skipping the profile → schema-build pipeline entirely.
//
// A snapshot captures the four stores the discovery interfaces query: the
// dictionary-encoded triple store (terms + quads), the per-column profiles
// with their CoLR embeddings, the table embeddings with their index
// insertion order, and the HNSW approximate index graph — plus the raw
// pipeline scripts, which are re-abstracted on load (deterministic and
// cheap; their triples are already in the store, so re-linking deduplicates
// to a no-op). The SPARQL result cache rides along: current-generation
// entries are saved and re-pinned to the restored store's generation, so a
// restarted server answers hot discovery queries warm.
//
// # File format (version 1)
//
//	offset  size  field
//	0       4     magic "KGLS"
//	4       2     format version, little-endian uint16
//	6       4     CRC-32 (IEEE) of the payload
//	10      8     payload length, little-endian uint64
//	18      ...   payload: sequence of sections
//
// Each section is a tag byte, an unsigned-varint byte length, and the
// section payload. Unknown tags are skipped, so old readers tolerate new
// optional sections. Integers are unsigned varints unless stated, floats
// are IEEE-754 little-endian, strings and vectors are length-prefixed.
//
//	tag  section
//	1    DICT    interned RDF terms in ID order (recursive term encoding)
//	2    QUADS   encoded quads: s, p, o term IDs + graph ID (0 = default)
//	3    PROF    column profiles: ids, fine-grained type, stats, embedding
//	4    TEMB    table embeddings: "dataset/table" → unnormalized vector
//	5    TORD    table-index insertion order (tie-break preservation)
//	6    EDGE    materialized similarity edges: A, B, kind, score
//	7    ANN     HNSW graph: parameters, entry, nodes with per-level links
//	8    SCRIPT  pipeline scripts: id, source, metadata
//	9    CONF    bootstrap config: α/β/θ thresholds, label-skip flag
//	10   QCACHE  SPARQL result cache: query text, result vars and rows
//	11   REPL    replication: store generation + changelog position
//
// Truncated files, checksum mismatches, unknown versions, and structurally
// invalid sections all fail loading with a descriptive error; a snapshot
// never loads partially.
//
// Version history: version 1 stored table/column metadata in the default
// graph; version 2 stores it in per-table named graphs (the unit of live
// table removal) and adds the CONF section. Version-1 files are rejected
// with ErrVersion rather than loaded into a platform whose incremental
// mutation path would silently fail to retract their metadata.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"kglids/internal/core"
	"kglids/internal/embed"
	"kglids/internal/pipeline"
	"kglids/internal/profiler"
	"kglids/internal/rdf"
	"kglids/internal/schema"
	"kglids/internal/sparql"
	"kglids/internal/store"
	"kglids/internal/vectorindex"
)

// Version is the current snapshot format version.
const Version = 2

var magic = [4]byte{'K', 'G', 'L', 'S'}

const headerLen = 4 + 2 + 4 + 8

// Section tags.
const (
	secDict    = 1
	secQuads   = 2
	secProf    = 3
	secTEmb    = 4
	secTOrder  = 5
	secEdges   = 6
	secANN     = 7
	secScripts = 8
	secConfig  = 9
	// secQueryCache persists the current-generation SPARQL result cache so
	// a restarted server answers hot discovery queries warm. Older readers
	// skip the unknown tag; the snapshot stays loadable either way.
	secQueryCache = 10
	// secRepl persists the store mutation generation and the changelog
	// position at save time, anchoring followers booted from this snapshot
	// to the primary's mutation stream. Older readers skip it.
	secRepl = 11
)

// Errors distinguishing the failure modes of Read.
var (
	// ErrBadMagic marks a file that is not a KGLiDS snapshot.
	ErrBadMagic = errors.New("snapshot: bad magic (not a KGLiDS snapshot)")
	// ErrVersion marks a snapshot written by an unsupported format version.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrChecksum marks a payload whose CRC does not match the header.
	ErrChecksum = errors.New("snapshot: checksum mismatch (corrupt payload)")
	// ErrTruncated marks a file shorter than its header promises.
	ErrTruncated = errors.New("snapshot: truncated file")
)

// Write serializes the platform to w in snapshot format. Live ingestion is
// paused (via the platform's ingest lock) while the payload is encoded, so
// a snapshot taken on a serving platform is always job-consistent: it
// never captures a half-applied mutation.
func Write(w io.Writer, p *core.Platform) (err error) {
	start := time.Now()
	defer func() {
		outcome := "ok"
		if err != nil {
			outcome = "error"
		}
		mSnapshotSeconds.WithLabelValues("save", outcome).Observe(time.Since(start).Seconds())
	}()
	var logPos uint64
	payload := func() []byte {
		p.IngestLock()
		defer p.IngestUnlock() // release even if encoding panics
		// Generation and changelog position are captured once, under the
		// ingest lock, so the REPL section is consistent with the quads and
		// the post-write compaction floor matches what was persisted.
		logPos = p.ChangelogPosition()
		return encodePayload(p, p.Store.Generation(), logPos)
	}()
	mSnapshotBytes.Set(int64(len(payload)))
	var hdr [headerLen]byte
	copy(hdr[0:4], magic[:])
	binary.LittleEndian.PutUint16(hdr[4:6], Version)
	binary.LittleEndian.PutUint32(hdr[6:10], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint64(hdr[10:18], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("snapshot: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("snapshot: write payload: %w", err)
	}
	// The snapshot now covers everything through logPos: followers below it
	// re-seed from this (or a newer) snapshot, so the changelog can drop
	// records at or below it.
	if cl := p.Store.Changelog(); cl != nil {
		cl.CompactTo(logPos)
	}
	return nil
}

// Save writes the platform snapshot to path atomically (temp file + rename),
// so a crash mid-save never leaves a truncated snapshot in place.
func Save(path string, p *core.Platform) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".kglids-snapshot-*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := Write(tmp, p); err != nil {
		tmp.Close()
		return err
	}
	// Flush file data before the rename: on a crash the rename must not
	// reach disk ahead of the payload, or it would replace a good snapshot
	// with a truncated one.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// Read deserializes a snapshot and reassembles a query-ready platform.
func Read(r io.Reader) (p *core.Platform, err error) {
	start := time.Now()
	defer func() {
		outcome := "ok"
		if err != nil {
			outcome = "error"
		}
		mSnapshotSeconds.WithLabelValues("load", outcome).Observe(time.Since(start).Seconds())
	}()
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if !bytes.Equal(hdr[0:4], magic[:]) {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != Version {
		return nil, fmt.Errorf("%w: got %d, support %d", ErrVersion, v, Version)
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[6:10])
	plen := binary.LittleEndian.Uint64(hdr[10:18])
	const maxPayload = 1 << 40
	if plen > maxPayload {
		return nil, fmt.Errorf("snapshot: implausible payload length %d", plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrTruncated, err)
	}
	mSnapshotBytes.Set(int64(len(payload)))
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, ErrChecksum
	}
	st, err := decodePayload(payload)
	if err != nil {
		return nil, err
	}
	return core.Restore(*st)
}

// Load reads a snapshot file and reassembles a query-ready platform.
func Load(path string) (*core.Platform, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	return Read(f)
}

func encodePayload(p *core.Platform, generation, logPos uint64) []byte {
	var out writer

	section := func(tag byte, body func(w *writer)) {
		var w writer
		body(&w)
		out.u8(tag)
		out.uvarint(uint64(w.buf.Len()))
		out.buf.Write(w.buf.Bytes())
	}

	section(secDict, func(w *writer) {
		terms := p.Store.Dict().Terms()
		w.uint(len(terms))
		for _, t := range terms {
			w.term(t)
		}
	})
	section(secQuads, func(w *writer) {
		var quads []store.EncodedQuad
		p.Store.ForEachEncodedQuad(func(q store.EncodedQuad) { quads = append(quads, q) })
		// Sorted so identical platforms produce byte-identical snapshots.
		sort.Slice(quads, func(i, j int) bool {
			a, b := quads[i], quads[j]
			if a.G != b.G {
				return a.G < b.G
			}
			if a.S != b.S {
				return a.S < b.S
			}
			if a.P != b.P {
				return a.P < b.P
			}
			return a.O < b.O
		})
		w.uint(len(quads))
		for _, q := range quads {
			w.uvarint(uint64(q.S))
			w.uvarint(uint64(q.P))
			w.uvarint(uint64(q.O))
			w.uvarint(uint64(q.G))
		}
	})
	profiles := p.ProfilesView()
	edges := p.EdgesView()
	tembs := p.TableEmbeddingsView()
	section(secProf, func(w *writer) {
		w.uint(len(profiles))
		for _, cp := range profiles {
			w.str(cp.Dataset)
			w.str(cp.Table)
			w.str(cp.Column)
			w.str(string(cp.Type))
			w.uint(cp.Stats.Total)
			w.uint(cp.Stats.Missing)
			w.uint(cp.Stats.Distinct)
			w.f64(cp.Stats.Min)
			w.f64(cp.Stats.Max)
			w.f64(cp.Stats.Mean)
			w.f64(cp.Stats.Std)
			w.f64(cp.Stats.TrueRatio)
			w.vec(cp.Embed)
		}
	})
	section(secTEmb, func(w *writer) {
		ids := make([]string, 0, len(tembs))
		for id := range tembs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		w.uint(len(ids))
		for _, id := range ids {
			w.str(id)
			w.vec(tembs[id])
		}
	})
	section(secTOrder, func(w *writer) {
		ids := p.TableIndex.IDs()
		w.uint(len(ids))
		for _, id := range ids {
			w.str(id)
		}
	})
	section(secEdges, func(w *writer) {
		w.uint(len(edges))
		for _, e := range edges {
			w.str(e.A)
			w.str(e.B)
			w.str(e.Kind)
			w.f64(e.Score)
		}
	})
	if p.TableANN != nil {
		section(secANN, func(w *writer) {
			g := p.TableANN.Export()
			w.uint(g.M)
			w.uint(g.EfConstruction)
			w.uint(g.EfSearch)
			w.varint(int64(g.Entry))
			w.uint(g.MaxLevel)
			w.uint(len(g.Nodes))
			for _, n := range g.Nodes {
				w.str(n.ID)
				w.vec(n.Vec)
				w.uint(len(n.Links))
				for _, level := range n.Links {
					w.uint(len(level))
					for _, nb := range level {
						w.uvarint(uint64(nb))
					}
				}
			}
		})
	}
	section(secConfig, func(w *writer) {
		cfg := p.Config()
		w.f64(cfg.Thresholds.Alpha)
		w.f64(cfg.Thresholds.Beta)
		w.f64(cfg.Thresholds.Theta)
		skip := byte(0)
		if cfg.SkipLabelSimilarity {
			skip = 1
		}
		w.u8(skip)
	})
	section(secScripts, func(w *writer) {
		scripts := p.Scripts()
		w.uint(len(scripts))
		for _, s := range scripts {
			w.str(s.ID)
			w.str(s.Source)
			w.str(s.Meta.Author)
			w.str(s.Meta.Dataset)
			w.str(s.Meta.Task)
			w.varint(int64(s.Meta.Votes))
			w.f64(s.Meta.Score)
		}
	})
	section(secQueryCache, func(w *writer) {
		entries := p.Discovery.CacheExport()
		w.uint(len(entries))
		for _, e := range entries {
			w.str(e.Query)
			w.uint(len(e.Res.Vars))
			for _, v := range e.Res.Vars {
				w.str(v)
			}
			w.uint(len(e.Res.Rows))
			for _, row := range e.Res.Rows {
				// Rows encode in Vars order with a presence flag per cell, so
				// identical caches produce byte-identical snapshots despite
				// Binding being a map.
				for _, v := range e.Res.Vars {
					t, ok := row[v]
					if !ok {
						w.u8(0)
						continue
					}
					w.u8(1)
					w.term(t)
				}
			}
		}
	})
	section(secRepl, func(w *writer) {
		w.uvarint(generation)
		w.uvarint(logPos)
	})
	return out.buf.Bytes()
}

// tableEmb is one decoded TEMB entry; entries are collected per goroutine
// and merged into the map after all decoders join.
type tableEmb struct {
	id  string
	vec embed.Vector
}

func decodePayload(payload []byte) (*core.RestoredState, error) {
	// Split the payload into raw sections first (cheap), then decode the
	// sections in parallel — they are independent until final assembly,
	// and the profile/embedding float vectors dominate decode time.
	type rawSection struct {
		tag  byte
		body []byte
	}
	top := &reader{b: payload}
	var sections []rawSection
	seenTags := map[byte]bool{}
	for top.err == nil && top.off < len(top.b) {
		tag := top.u8()
		length := top.uvarint()
		if top.err != nil {
			break
		}
		if length > uint64(len(top.b)-top.off) {
			top.fail("section %d length %d exceeds remaining %d bytes", tag, length, len(top.b)-top.off)
			break
		}
		// Known tags must be unique: duplicate sections would hand the same
		// output variables to two decoder goroutines.
		if tag >= secDict && tag <= secRepl {
			if seenTags[tag] {
				top.fail("duplicate section tag %d", tag)
				break
			}
			seenTags[tag] = true
		}
		sections = append(sections, rawSection{tag: tag, body: top.b[top.off : top.off+int(length)]})
		top.off += int(length)
	}
	if top.err != nil {
		return nil, top.err
	}

	st := &core.RestoredState{TableEmbeddings: map[string]embed.Vector{}}
	var (
		dictTerms []rdf.Term
		quads     []store.EncodedQuad
		tembs     []tableEmb
		annErr    error
	)
	sawDict, sawQuads := false, false

	var wg sync.WaitGroup
	errs := make([]error, len(sections))
	for i := range sections {
		sec := sections[i]
		var decode func(r *reader)
		switch sec.tag {
		case secDict:
			sawDict = true
			decode = func(r *reader) {
				n := r.count()
				dictTerms = make([]rdf.Term, 0, n)
				for i := 0; i < n && r.err == nil; i++ {
					dictTerms = append(dictTerms, r.term(0))
				}
			}
		case secQuads:
			sawQuads = true
			decode = func(r *reader) {
				n := r.count()
				quads = make([]store.EncodedQuad, 0, n)
				for i := 0; i < n && r.err == nil; i++ {
					quads = append(quads, store.EncodedQuad{
						S: store.TermID(r.uvarint()),
						P: store.TermID(r.uvarint()),
						O: store.TermID(r.uvarint()),
						G: store.TermID(r.uvarint()),
					})
				}
			}
		case secProf:
			decode = func(r *reader) {
				n := r.count()
				st.Profiles = make([]*profiler.ColumnProfile, 0, n)
				for i := 0; i < n && r.err == nil; i++ {
					cp := &profiler.ColumnProfile{
						Dataset: r.str(),
						Table:   r.str(),
						Column:  r.str(),
						Type:    embed.Type(r.str()),
					}
					cp.Stats.Total = r.uint()
					cp.Stats.Missing = r.uint()
					cp.Stats.Distinct = r.uint()
					cp.Stats.Min = r.f64()
					cp.Stats.Max = r.f64()
					cp.Stats.Mean = r.f64()
					cp.Stats.Std = r.f64()
					cp.Stats.TrueRatio = r.f64()
					cp.Embed = r.vec()
					st.Profiles = append(st.Profiles, cp)
				}
			}
		case secTEmb:
			decode = func(r *reader) {
				n := r.count()
				tembs = make([]tableEmb, 0, n)
				for i := 0; i < n && r.err == nil; i++ {
					tembs = append(tembs, tableEmb{id: r.str(), vec: r.vec()})
				}
			}
		case secTOrder:
			decode = func(r *reader) {
				n := r.count()
				st.TableOrder = make([]string, 0, n)
				for i := 0; i < n && r.err == nil; i++ {
					st.TableOrder = append(st.TableOrder, r.str())
				}
			}
		case secEdges:
			decode = func(r *reader) {
				n := r.count()
				st.Edges = make([]schema.Edge, 0, n)
				for i := 0; i < n && r.err == nil; i++ {
					st.Edges = append(st.Edges, schema.Edge{
						A: r.str(), B: r.str(), Kind: r.str(), Score: r.f64(),
					})
				}
			}
		case secANN:
			decode = func(r *reader) {
				g := vectorindex.Graph{
					M:              r.uint(),
					EfConstruction: r.uint(),
					EfSearch:       r.uint(),
					Entry:          int(r.varint()),
					MaxLevel:       r.uint(),
				}
				n := r.count()
				g.Nodes = make([]vectorindex.GraphNode, 0, n)
				for i := 0; i < n && r.err == nil; i++ {
					gn := vectorindex.GraphNode{ID: r.str(), Vec: r.vec()}
					levels := r.count()
					gn.Links = make([][]int, 0, levels)
					for l := 0; l < levels && r.err == nil; l++ {
						cnt := r.count()
						links := make([]int, 0, cnt)
						for c := 0; c < cnt && r.err == nil; c++ {
							links = append(links, int(r.uvarint()))
						}
						gn.Links = append(gn.Links, links)
					}
					g.Nodes = append(g.Nodes, gn)
				}
				if r.err == nil {
					st.TableANN, annErr = vectorindex.ImportHNSW(g)
				}
			}
		case secConfig:
			decode = func(r *reader) {
				cfg := core.DefaultConfig()
				cfg.Thresholds.Alpha = r.f64()
				cfg.Thresholds.Beta = r.f64()
				cfg.Thresholds.Theta = r.f64()
				cfg.SkipLabelSimilarity = r.u8() == 1
				if r.err == nil {
					st.Config = &cfg
				}
			}
		case secScripts:
			decode = func(r *reader) {
				n := r.count()
				st.Scripts = make([]pipeline.Script, 0, n)
				for i := 0; i < n && r.err == nil; i++ {
					s := pipeline.Script{ID: r.str(), Source: r.str()}
					s.Meta.Author = r.str()
					s.Meta.Dataset = r.str()
					s.Meta.Task = r.str()
					s.Meta.Votes = int(r.varint())
					s.Meta.Score = r.f64()
					st.Scripts = append(st.Scripts, s)
				}
			}
		case secQueryCache:
			decode = func(r *reader) {
				n := r.count()
				st.QueryCache = make([]sparql.CacheEntry, 0, n)
				for i := 0; i < n && r.err == nil; i++ {
					ent := sparql.CacheEntry{Query: r.str(), Res: &sparql.Result{}}
					nv := r.count()
					ent.Res.Vars = make([]string, 0, nv)
					for v := 0; v < nv && r.err == nil; v++ {
						ent.Res.Vars = append(ent.Res.Vars, r.str())
					}
					nr := r.count()
					ent.Res.Rows = make([]sparql.Binding, 0, nr)
					for j := 0; j < nr && r.err == nil; j++ {
						row := make(sparql.Binding, nv)
						for _, v := range ent.Res.Vars {
							if r.u8() == 1 {
								row[v] = r.term(0)
							}
						}
						ent.Res.Rows = append(ent.Res.Rows, row)
					}
					st.QueryCache = append(st.QueryCache, ent)
				}
			}
		case secRepl:
			decode = func(r *reader) {
				st.Generation = r.uvarint()
				st.ChangelogPos = r.uvarint()
			}
		default:
			// Unknown optional section from a newer writer: skip.
			continue
		}
		wg.Add(1)
		go func(i int, body []byte, decode func(*reader)) {
			defer wg.Done()
			r := &reader{b: body}
			decode(r)
			errs[i] = r.err
		}(i, sec.body, decode)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if annErr != nil {
		return nil, annErr
	}
	for _, te := range tembs {
		st.TableEmbeddings[te.id] = te.vec
	}
	if !sawDict || !sawQuads {
		return nil, fmt.Errorf("snapshot: missing required %s section",
			map[bool]string{true: "QUADS", false: "DICT"}[sawDict])
	}

	// Rebuild the store: bulk-loading terms in ID order reproduces the
	// saved dictionary, then the encoded quads replay directly.
	s := store.New()
	dictLen := store.TermID(len(dictTerms))
	if err := s.Dict().BulkLoad(dictTerms); err != nil {
		return nil, err
	}
	for _, q := range quads {
		if q.S == 0 || q.S > dictLen || q.P == 0 || q.P > dictLen || q.O == 0 || q.O > dictLen || q.G > dictLen {
			return nil, fmt.Errorf("snapshot: quad references term ID outside dictionary of %d terms", dictLen)
		}
	}
	s.AddEncodedBatch(quads)
	st.Store = s
	return st, nil
}
