package snapshot

import (
	"fmt"
	"sort"

	"kglids/internal/core"
	"kglids/internal/embed"
	"kglids/internal/profiler"
	"kglids/internal/rdf"
	"kglids/internal/schema"
	"kglids/internal/store"
)

// Change is the decoded payload of one changelog record, ready to apply to
// a follower platform. Exactly one of the three bodies is populated,
// according to Kind: Quads for add/remove records, Graph for remove-graph
// records, Delta for platform-delta records.
type Change struct {
	Kind  store.ChangeKind
	Quads []rdf.Quad
	Graph rdf.Term
	Delta *core.PlatformDelta
}

// EncodeChange serializes a changelog record body for the wire, using the
// snapshot codec (recursive RDF-star-aware term encoding, varint framing).
// The record's sequence, generation, and kind travel in the HTTP envelope;
// only the body is encoded here.
func EncodeChange(rec store.ChangeRecord) ([]byte, error) {
	var w writer
	switch rec.Kind {
	case store.ChangeAddQuads, store.ChangeRemoveQuads:
		w.uint(len(rec.Quads))
		for _, q := range rec.Quads {
			encodeQuad(&w, q)
		}
	case store.ChangeRemoveGraph:
		w.term(rec.Graph)
	case store.ChangeAux:
		d, ok := rec.Aux.(*core.PlatformDelta)
		if !ok {
			return nil, fmt.Errorf("snapshot: changelog aux record %d carries %T, want *core.PlatformDelta", rec.Seq, rec.Aux)
		}
		encodeDelta(&w, d)
	default:
		return nil, fmt.Errorf("snapshot: unknown changelog kind %q", rec.Kind)
	}
	return w.buf.Bytes(), nil
}

// DecodeChange deserializes a changelog record body received from a
// primary. It is the exact inverse of EncodeChange.
func DecodeChange(kind string, payload []byte) (*Change, error) {
	c := &Change{Kind: store.ChangeKind(kind)}
	r := &reader{b: payload}
	switch c.Kind {
	case store.ChangeAddQuads, store.ChangeRemoveQuads:
		n := r.count()
		c.Quads = make([]rdf.Quad, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			c.Quads = append(c.Quads, decodeQuad(r))
		}
	case store.ChangeRemoveGraph:
		c.Graph = r.term(0)
	case store.ChangeAux:
		c.Delta = decodeDelta(r)
	default:
		return nil, fmt.Errorf("snapshot: unknown changelog kind %q", kind)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("snapshot: changelog %s record has %d trailing bytes", kind, len(r.b)-r.off)
	}
	return c, nil
}

func encodeQuad(w *writer, q rdf.Quad) {
	w.term(q.Subject)
	w.term(q.Predicate)
	w.term(q.Object)
	w.term(q.Graph)
}

func decodeQuad(r *reader) rdf.Quad {
	return rdf.Quad{
		Triple: rdf.Triple{
			Subject:   r.term(0),
			Predicate: r.term(0),
			Object:    r.term(0),
		},
		Graph: r.term(0),
	}
}

// encodeDelta mirrors the snapshot PROF/EDGE/TEMB section shapes for the
// incremental slice a single mutation produced.
func encodeDelta(w *writer, d *core.PlatformDelta) {
	w.str(d.RemovedTable)
	w.uint(len(d.Profiles))
	for _, cp := range d.Profiles {
		w.str(cp.Dataset)
		w.str(cp.Table)
		w.str(cp.Column)
		w.str(string(cp.Type))
		w.uint(cp.Stats.Total)
		w.uint(cp.Stats.Missing)
		w.uint(cp.Stats.Distinct)
		w.f64(cp.Stats.Min)
		w.f64(cp.Stats.Max)
		w.f64(cp.Stats.Mean)
		w.f64(cp.Stats.Std)
		w.f64(cp.Stats.TrueRatio)
		w.vec(cp.Embed)
	}
	w.uint(len(d.Edges))
	for _, e := range d.Edges {
		w.str(e.A)
		w.str(e.B)
		w.str(e.Kind)
		w.f64(e.Score)
	}
	ids := make([]string, 0, len(d.TableEmbeddings))
	for id := range d.TableEmbeddings {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	w.uint(len(ids))
	for _, id := range ids {
		w.str(id)
		w.vec(d.TableEmbeddings[id])
	}
}

func decodeDelta(r *reader) *core.PlatformDelta {
	d := &core.PlatformDelta{RemovedTable: r.str()}
	n := r.count()
	d.Profiles = make([]*profiler.ColumnProfile, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		cp := &profiler.ColumnProfile{
			Dataset: r.str(),
			Table:   r.str(),
			Column:  r.str(),
			Type:    embed.Type(r.str()),
		}
		cp.Stats.Total = r.uint()
		cp.Stats.Missing = r.uint()
		cp.Stats.Distinct = r.uint()
		cp.Stats.Min = r.f64()
		cp.Stats.Max = r.f64()
		cp.Stats.Mean = r.f64()
		cp.Stats.Std = r.f64()
		cp.Stats.TrueRatio = r.f64()
		cp.Embed = r.vec()
		d.Profiles = append(d.Profiles, cp)
	}
	n = r.count()
	d.Edges = make([]schema.Edge, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		d.Edges = append(d.Edges, schema.Edge{
			A: r.str(), B: r.str(), Kind: r.str(), Score: r.f64(),
		})
	}
	n = r.count()
	d.TableEmbeddings = make(map[string]embed.Vector, n)
	for i := 0; i < n && r.err == nil; i++ {
		id := r.str()
		d.TableEmbeddings[id] = r.vec()
	}
	return d
}
