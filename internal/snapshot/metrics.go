package snapshot

import "kglids/internal/obs"

// Snapshot metrics: every serialize (Write/Save/SaveTo) and deserialize
// (Read/Load/Open) records its duration and outcome, and the last
// payload size is exported so operators can watch snapshots grow with
// the lake.
var (
	mSnapshotSeconds = obs.Default.NewHistogramVec("kglids_snapshot_seconds",
		"Snapshot serialize/deserialize duration by op (save, load) and outcome (ok, error).",
		obs.DefaultLatencyBuckets, "op", "outcome")
	mSnapshotBytes = obs.Default.NewGauge("kglids_snapshot_last_bytes",
		"Payload size of the most recent snapshot written or read.")
)
