package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"kglids/internal/core"
	"kglids/internal/lakegen"
	"kglids/internal/pipegen"
	"kglids/internal/pipeline"
	"kglids/internal/rdf"
	"kglids/internal/schema"
)

// fixture bootstraps a small platform with pipelines, shared across tests.
func fixture(t testing.TB) (*core.Platform, *lakegen.Benchmark) {
	t.Helper()
	lake := lakegen.Generate(lakegen.Spec{
		Name: "snap", Families: 4, TablesPerFamily: 3, NoiseTables: 3,
		RowsPerTable: 60, QueryTables: 4, Seed: 77,
	})
	var tables []core.Table
	for _, df := range lake.Tables {
		tables = append(tables, core.Table{Dataset: lake.Dataset[df.Name], Frame: df})
	}
	cfg := core.DefaultConfig()
	cfg.Thresholds.Theta = 0.70
	plat := core.Bootstrap(cfg, tables)
	var datasets []pipegen.Dataset
	for _, df := range lake.Tables[:2] {
		datasets = append(datasets, pipegen.FrameDataset(lake.Dataset[df.Name], df, df.Columns()[0]))
	}
	corpus := pipegen.Generate(pipegen.Options{NumPipelines: 12, Datasets: datasets, Seed: 78})
	scripts := make([]pipeline.Script, len(corpus))
	for i, g := range corpus {
		scripts[i] = g.Script
	}
	plat.AddPipelines(scripts)
	return plat, lake
}

func roundTrip(t testing.TB, p *core.Platform) *core.Platform {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatalf("write: %v", err)
	}
	restored, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return restored
}

func TestRoundTripStatsIdentical(t *testing.T) {
	plat, _ := fixture(t)
	restored := roundTrip(t, plat)
	if got, want := restored.Stats(), plat.Stats(); got != want {
		t.Fatalf("stats differ:\n got %+v\nwant %+v", got, want)
	}
	if got, want := restored.Store.Dict().Len(), plat.Store.Dict().Len(); got != want {
		t.Fatalf("dictionary size %d, want %d", got, want)
	}
}

func TestRoundTripDiscoveryIdentical(t *testing.T) {
	plat, lake := fixture(t)
	restored := roundTrip(t, plat)

	q := lake.QueryTables[0]
	iri := schema.TableIRI(lake.Dataset[q] + "/" + q)
	want := plat.Discovery.UnionableTables(iri, 10)
	got := restored.Discovery.UnionableTables(iri, 10)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("unionable top-k differ:\n got %v\nwant %v", got, want)
	}

	kws := [][]string{{q[:3]}}
	if got, want := restored.Discovery.SearchKeywords(kws), plat.Discovery.SearchKeywords(kws); !reflect.DeepEqual(got, want) {
		t.Fatalf("keyword search differs:\n got %v\nwant %v", got, want)
	}

	const sq = `SELECT (COUNT(?t) AS ?n) WHERE { ?t a kglids:Table . }`
	r1, err := plat.Query(sq)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := restored.Query(sq)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Rows, r2.Rows) {
		t.Fatalf("sparql differs: %v vs %v", r1.Rows, r2.Rows)
	}
}

// TestRoundTripWarmQueryCache: results cached before the save come back
// warm — the restored platform's first repeat of a saved query is a cache
// hit (no re-execution) with identical rows, re-pinned to the restored
// store's generation.
func TestRoundTripWarmQueryCache(t *testing.T) {
	plat, _ := fixture(t)
	const sq = `SELECT ?t ?n WHERE { ?t a kglids:Table ; kglids:name ?n . }`
	want, err := plat.Query(sq)
	if err != nil {
		t.Fatal(err)
	}
	restored := roundTrip(t, plat)

	before := restored.Discovery.CacheStats()
	got, err := restored.Query(sq)
	if err != nil {
		t.Fatal(err)
	}
	after := restored.Discovery.CacheStats()
	if after.Hits != before.Hits+1 || after.Misses != before.Misses {
		t.Fatalf("saved query should hit the restored cache: before %+v, after %+v", before, after)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("warm cached rows differ:\n got %v\nwant %v", got.Rows, want.Rows)
	}

	// A query never run before the save must still miss.
	if _, err := restored.Query(`SELECT ?c WHERE { ?c a kglids:Column . }`); err != nil {
		t.Fatal(err)
	}
	if final := restored.Discovery.CacheStats(); final.Misses != after.Misses+1 {
		t.Fatalf("unsaved query should miss: %+v", final)
	}
}

func TestRoundTripEmbeddingSearchIdentical(t *testing.T) {
	plat, lake := fixture(t)
	restored := roundTrip(t, plat)
	df := lake.Tables[0]
	want := plat.SimilarTablesByEmbedding(df, 5)
	got := restored.SimilarTablesByEmbedding(df, 5)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("exact similar-tables differ:\n got %v\nwant %v", got, want)
	}
	wantANN := plat.ApproxSimilarTables(df, 5)
	gotANN := restored.ApproxSimilarTables(df, 5)
	if !reflect.DeepEqual(gotANN, wantANN) {
		t.Fatalf("ANN similar-tables differ:\n got %v\nwant %v", gotANN, wantANN)
	}
}

func TestRoundTripAnnotationsSurvive(t *testing.T) {
	plat, _ := fixture(t)
	// RDF-star annotations use quoted-triple terms; make sure one survives
	// the recursive term codec.
	tr := rdf.T(rdf.Resource("a"), rdf.Ontology("p"), rdf.Resource("b"))
	plat.Store.AddAnnotated(tr, rdf.Resource("g"), rdf.Ontology("certainty"), rdf.Float(0.5))
	restored := roundTrip(t, plat)
	v, ok := restored.Store.Annotation(tr, rdf.Ontology("certainty"))
	if !ok {
		t.Fatal("annotation lost in round trip")
	}
	if f, _ := v.AsFloat(); f != 0.5 {
		t.Fatalf("annotation value = %v", v)
	}
}

func TestSaveLoadFile(t *testing.T) {
	plat, _ := fixture(t)
	path := filepath.Join(t.TempDir(), "plat.kgs")
	if err := Save(path, plat); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Stats() != plat.Stats() {
		t.Fatal("file round-trip stats differ")
	}
}

func TestDeterministicBytes(t *testing.T) {
	plat, _ := fixture(t)
	var a, b bytes.Buffer
	if err := Write(&a, plat); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, plat); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of the same platform produced different bytes")
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	_, err := Read(bytes.NewReader([]byte("not a snapshot at all, sorry......")))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestReadRejectsFutureVersion(t *testing.T) {
	plat, _ := fixture(t)
	var buf bytes.Buffer
	if err := Write(&buf, plat); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 0xFF // bump version
	_, err := Read(bytes.NewReader(data))
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	plat, _ := fixture(t)
	var buf bytes.Buffer
	if err := Write(&buf, plat); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{0, 3, headerLen - 1, headerLen + 10, len(data) / 2, len(data) - 1} {
		if _, err := Read(bytes.NewReader(data[:cut])); !errors.Is(err, ErrTruncated) {
			t.Errorf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	plat, _ := fixture(t)
	var buf bytes.Buffer
	if err := Write(&buf, plat); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a byte in the middle of the payload.
	data[headerLen+len(data)/2] ^= 0xA5
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

func TestReadRejectsDuplicateSections(t *testing.T) {
	plat, _ := fixture(t)
	var buf bytes.Buffer
	if err := Write(&buf, plat); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	payload := data[headerLen:]
	// Duplicate the first section (DICT) at the end of the payload and
	// rebuild a consistent header: two goroutines decoding into the same
	// outputs must be rejected, not raced.
	r := &reader{b: payload}
	r.u8()
	length := r.uvarint()
	if r.err != nil {
		t.Fatal(r.err)
	}
	first := payload[:r.off+int(length)]
	forged := append(append([]byte(nil), payload...), first...)
	var out bytes.Buffer
	var hdr [headerLen]byte
	copy(hdr[0:4], magic[:])
	binary.LittleEndian.PutUint16(hdr[4:6], Version)
	binary.LittleEndian.PutUint32(hdr[6:10], crc32.ChecksumIEEE(forged))
	binary.LittleEndian.PutUint64(hdr[10:18], uint64(len(forged)))
	out.Write(hdr[:])
	out.Write(forged)
	_, err := Read(bytes.NewReader(out.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "duplicate section") {
		t.Fatalf("err = %v, want duplicate-section error", err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.kgs")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestSaveIsAtomic(t *testing.T) {
	plat, _ := fixture(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "plat.kgs")
	if err := Save(path, plat); err != nil {
		t.Fatal(err)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "plat.kgs" {
		t.Fatalf("directory contents = %v", entries)
	}
}
