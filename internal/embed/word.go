package embed

import (
	"strings"
	"unicode"
)

// WordModel produces label embeddings for column names. It substitutes for
// the paper's GloVe + WordNet combination: a built-in synonym-set lexicon
// covers common data-science column vocabulary (so "gender" ~ "sex",
// "target" ~ "label"), and character-trigram hashing covers out-of-
// vocabulary tokens (so "area_sq_ft" ~ "area_sq_m").
type WordModel struct {
	synsetOf map[string]int
}

// synsets groups words that the label model should place close together.
// Each group acts like a shared WordNet synset / GloVe neighborhood.
var synsets = [][]string{
	{"sex", "gender"},
	{"target", "label", "class", "outcome", "y"},
	{"age", "years", "yrs"},
	{"name", "title", "fullname"},
	{"id", "identifier", "key", "code", "uid"},
	{"price", "cost", "amount", "fare", "fee", "charge"},
	{"salary", "income", "wage", "earnings", "pay"},
	{"city", "town", "municipality"},
	{"country", "nation", "state"},
	{"region", "area", "zone", "district"},
	{"date", "day", "time", "timestamp", "datetime"},
	{"year", "yr"},
	{"month", "mon"},
	{"latitude", "lat"},
	{"longitude", "lon", "lng", "long"},
	{"address", "street", "location"},
	{"phone", "telephone", "mobile", "tel"},
	{"email", "mail"},
	{"weight", "mass", "wt"},
	{"height", "stature", "ht"},
	{"temperature", "temp"},
	{"count", "number", "num", "quantity", "qty", "total"},
	{"rate", "ratio", "percentage", "percent", "pct", "frac"},
	{"score", "rating", "grade", "rank"},
	{"revenue", "sales", "turnover"},
	{"profit", "margin", "gain"},
	{"customer", "client", "user", "member", "patient"},
	{"product", "item", "goods", "sku"},
	{"category", "type", "kind", "group", "segment"},
	{"description", "desc", "comment", "note", "text", "review"},
	{"status", "flag", "active"},
	{"survived", "alive", "survival"},
	{"death", "died", "deceased", "mortality"},
	{"disease", "illness", "condition", "diagnosis"},
	{"heart", "cardiac"},
	{"blood", "serum"},
	{"pressure", "bp"},
	{"glucose", "sugar"},
	{"cholesterol", "chol"},
	{"smoker", "smoking", "tobacco"},
	{"education", "degree", "schooling"},
	{"occupation", "job", "profession", "work"},
	{"married", "marital", "spouse"},
	{"children", "kids", "dependents"},
	{"duration", "length", "period", "term"},
	{"distance", "dist", "mileage"},
	{"speed", "velocity"},
	{"company", "organization", "org", "employer", "firm"},
	{"department", "dept", "division"},
	{"balance", "account"},
	{"loan", "credit", "debt"},
	{"population", "pop", "inhabitants"},
	{"team", "club", "squad"},
	{"player", "athlete"},
	{"game", "match"},
	{"win", "victory", "won"},
	{"loss", "defeat", "lost"},
	{"gdp", "economy"},
	{"language", "lang", "tongue"},
	{"capital", "metropolis"},
	{"gross", "net"},
	{"vote", "votes", "ballot"},
	{"first", "fname", "given"},
	{"last", "lname", "surname", "family"},
	{"zip", "zipcode", "postal", "postcode"},
}

// NewWordModel returns the built-in label model.
func NewWordModel() *WordModel {
	m := &WordModel{synsetOf: map[string]int{}}
	for i, group := range synsets {
		for _, w := range group {
			m.synsetOf[w] = i
		}
	}
	return m
}

// Embed returns the WordDim-dimensional embedding of a single word.
// In-lexicon words get their synset's base vector plus a small
// word-specific perturbation; other words are encoded by character
// trigrams so that morphologically close words stay close.
func (m *WordModel) Embed(word string) Vector {
	w := strings.ToLower(strings.TrimSpace(word))
	v := NewVector(WordDim)
	if w == "" {
		return v
	}
	if syn, ok := m.synsetOf[w]; ok {
		addHashed(v, "synset:"+itoa(syn), 1.0)
		addHashed(v, "word:"+w, 0.25)
		v.Normalize()
		return v
	}
	padded := "^" + w + "$"
	for i := 0; i+3 <= len(padded); i++ {
		addHashed(v, "tri:"+padded[i:i+3], 1.0)
	}
	addHashed(v, "word:"+w, 0.5)
	v.Normalize()
	return v
}

// EmbedLabel tokenizes a column name (snake_case, camelCase, digits
// stripped) and averages the token embeddings.
func (m *WordModel) EmbedLabel(label string) Vector {
	toks := TokenizeLabel(label)
	v := NewVector(WordDim)
	if len(toks) == 0 {
		return v
	}
	for _, t := range toks {
		v.Add(m.Embed(t))
	}
	v.Scale(1 / float64(len(toks)))
	v.Normalize()
	return v
}

// Similarity returns the label-embedding cosine similarity of two column
// names, the score thresholded by α in Algorithm 3.
func (m *WordModel) Similarity(a, b string) float64 {
	if normalizeLabel(a) == normalizeLabel(b) {
		return 1.0
	}
	return Cosine(m.EmbedLabel(a), m.EmbedLabel(b))
}

// InVocabulary reports whether the lowercase word is in the synonym
// lexicon. The profiler uses this to detect natural-language text columns.
func (m *WordModel) InVocabulary(word string) bool {
	_, ok := m.synsetOf[strings.ToLower(word)]
	return ok
}

func normalizeLabel(s string) string {
	return strings.Join(TokenizeLabel(s), " ")
}

// TokenizeLabel splits an identifier-like label into lowercase word tokens:
// separators are non-alphanumerics, camelCase boundaries, and digit runs.
func TokenizeLabel(s string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	runes := []rune(s)
	for i, r := range runes {
		switch {
		case unicode.IsLetter(r):
			if i > 0 && unicode.IsUpper(r) && unicode.IsLower(runes[i-1]) {
				flush()
			}
			cur.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return toks
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
