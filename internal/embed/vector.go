// Package embed implements KGLiDS's embedding models (paper Section 3.2):
// word embeddings for column-label similarity, CoLR (Column Learned
// Representation) content encoders producing 300-dimensional column
// embeddings per fine-grained type, and table/dataset embeddings via
// per-type aggregation (Eq. 1).
//
// The paper's CoLR models are neural networks trained on 5,500 Kaggle and
// OpenML tables; its label model combines GloVe with a WordNet-based
// semantic similarity. Neither resource is available offline, so this
// package substitutes deterministic encoders engineered to have the same
// invariances the trained models are used for (see DESIGN.md §2): value
// overlap and distribution similarity for content, synonymy and
// morphological closeness for labels.
package embed

import (
	"hash/fnv"
	"math"
)

// Dim is the CoLR embedding dimensionality used throughout KGLiDS.
const Dim = 300

// WordDim is the label (word) embedding dimensionality.
const WordDim = 50

// Vector is a dense embedding.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Add accumulates o into v.
func (v Vector) Add(o Vector) {
	for i := range v {
		v[i] += o[i]
	}
}

// Scale multiplies v in place.
func (v Vector) Scale(f float64) {
	for i := range v {
		v[i] *= f
	}
}

// Dot returns the inner product.
func (v Vector) Dot(o Vector) float64 {
	s := 0.0
	for i := range v {
		s += v[i] * o[i]
	}
	return s
}

// Norm returns the L2 norm.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize scales v to unit norm (no-op for zero vectors).
func (v Vector) Normalize() {
	n := v.Norm()
	if n > 0 {
		v.Scale(1 / n)
	}
}

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Cosine returns the cosine similarity of a and b (0 for zero vectors).
func Cosine(a, b Vector) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return a.Dot(b) / (na * nb)
}

// Concat returns the concatenation of vectors.
func Concat(vs ...Vector) Vector {
	n := 0
	for _, v := range vs {
		n += len(v)
	}
	out := make(Vector, 0, n)
	for _, v := range vs {
		out = append(out, v...)
	}
	return out
}

// hashIndex maps a string feature to a dimension in [0, dim) with a signed
// weight (+1/-1), the standard feature-hashing construction.
func hashIndex(feature string, dim int) (int, float64) {
	h := fnv.New64a()
	h.Write([]byte(feature))
	v := h.Sum64()
	idx := int(v % uint64(dim))
	sign := 1.0
	if (v>>63)&1 == 1 {
		sign = -1.0
	}
	return idx, sign
}

// addHashed adds a hashed feature with the given weight into v.
func addHashed(v Vector, feature string, weight float64) {
	i, sign := hashIndex(feature, len(v))
	v[i] += sign * weight
}
