package embed

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorOps(t *testing.T) {
	a := Vector{3, 4}
	if a.Norm() != 5 {
		t.Errorf("Norm = %v", a.Norm())
	}
	a.Normalize()
	if math.Abs(a.Norm()-1) > 1e-12 {
		t.Errorf("normalized norm = %v", a.Norm())
	}
	b := Vector{1, 0}
	if got := Cosine(b, Vector{0, 1}); got != 0 {
		t.Errorf("orthogonal cosine = %v", got)
	}
	if got := Cosine(b, Vector{2, 0}); math.Abs(got-1) > 1e-12 {
		t.Errorf("parallel cosine = %v", got)
	}
	if got := Cosine(b, Vector{0, 0}); got != 0 {
		t.Errorf("zero-vector cosine = %v", got)
	}
	c := Concat(Vector{1}, Vector{2, 3})
	if len(c) != 3 || c[2] != 3 {
		t.Errorf("Concat = %v", c)
	}
}

func TestCosineRange(t *testing.T) {
	clamp := func(xs []float64) Vector {
		v := make(Vector, len(xs))
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			// Keep magnitudes in a realistic embedding range to avoid
			// float64 overflow in the dot product.
			v[i] = math.Mod(x, 1e6)
		}
		return v
	}
	f := func(a, b []float64) bool {
		va, vb := clamp(a), clamp(b)
		if len(va) != len(vb) {
			n := min(len(va), len(vb))
			va, vb = va[:n], vb[:n]
		}
		c := Cosine(va, vb)
		return c >= -1.0000001 && c <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenizeLabel(t *testing.T) {
	cases := map[string][]string{
		"PassengerId":   {"passenger", "id"},
		"area_sq_ft":    {"area", "sq", "ft"},
		"Age":           {"age"},
		"heart-disease": {"heart", "disease"},
		"col_2":         {"col"},
		"":              nil,
	}
	for in, want := range cases {
		got := TokenizeLabel(in)
		if len(got) != len(want) {
			t.Errorf("TokenizeLabel(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("TokenizeLabel(%q) = %v, want %v", in, got, want)
			}
		}
	}
}

func TestWordModelSynonyms(t *testing.T) {
	m := NewWordModel()
	// Synonyms must score much higher than unrelated words.
	synPairs := [][2]string{{"Sex", "gender"}, {"target", "label"}, {"price", "cost"}, {"city", "town"}}
	for _, p := range synPairs {
		if got := m.Similarity(p[0], p[1]); got < 0.6 {
			t.Errorf("Similarity(%q, %q) = %v, want >= 0.6", p[0], p[1], got)
		}
	}
	if got := m.Similarity("gender", "longitude"); got > 0.4 {
		t.Errorf("unrelated similarity = %v, want < 0.4", got)
	}
	if got := m.Similarity("Age", "age"); got != 1 {
		t.Errorf("case-insensitive identity = %v", got)
	}
}

func TestWordModelMorphology(t *testing.T) {
	m := NewWordModel()
	// OOV words sharing trigram structure should be closer than unrelated.
	close := m.Similarity("area_sq_ft", "area_sq_m")
	far := m.Similarity("area_sq_ft", "passenger_survived")
	if close <= far {
		t.Errorf("morphological closeness: close=%v far=%v", close, far)
	}
}

func TestWordEmbedDeterminism(t *testing.T) {
	m := NewWordModel()
	a, b := m.EmbedLabel("heart_rate"), m.EmbedLabel("heart_rate")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("EmbedLabel not deterministic")
		}
	}
}

func genValues(rng *rand.Rand, n int, gen func() string) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = gen()
	}
	return out
}

func TestCoLRValueOverlap(t *testing.T) {
	c := NewCoLR()
	rng := rand.New(rand.NewSource(1))
	cities := []string{"Montreal", "Toronto", "Vancouver", "Ottawa", "Calgary"}
	animals := []string{"cat", "dog", "horse", "cow", "sheep"}
	a := c.EncodeColumn(genValues(rng, 200, func() string { return cities[rng.Intn(len(cities))] }), TypeNamedEntity)
	b := c.EncodeColumn(genValues(rng, 200, func() string { return cities[rng.Intn(len(cities))] }), TypeNamedEntity)
	d := c.EncodeColumn(genValues(rng, 200, func() string { return animals[rng.Intn(len(animals))] }), TypeNamedEntity)
	if Cosine(a, b) < 0.9 {
		t.Errorf("same-domain cosine = %v, want >= 0.9", Cosine(a, b))
	}
	if Cosine(a, d) > Cosine(a, b) {
		t.Errorf("different-domain cosine %v should be below same-domain %v", Cosine(a, d), Cosine(a, b))
	}
}

func TestCoLRNumericDistribution(t *testing.T) {
	c := NewCoLR()
	rng := rand.New(rand.NewSource(2))
	norm := func(mu, sigma float64) func() string {
		return func() string { return fmt.Sprintf("%.2f", rng.NormFloat64()*sigma+mu) }
	}
	// Identical distribution at the same scale: near-duplicate columns.
	sqft := c.EncodeColumn(genValues(rng, 500, norm(1500, 300)), TypeFloat)
	sqft2 := c.EncodeColumn(genValues(rng, 500, norm(1500, 300)), TypeFloat)
	if got := Cosine(sqft, sqft2); got < 0.9 {
		t.Errorf("same-scale same-shape similarity = %v, want >= 0.9", got)
	}
	// Same variable, different units (sq ft vs sq m, factor ~10.76):
	// z-scored histograms coincide, so similarity stays moderate even
	// though the magnitude features disagree.
	sqm := c.EncodeColumn(genValues(rng, 500, norm(139, 28)), TypeFloat)
	unitPair := Cosine(sqft, sqm)
	if unitPair < 0.5 {
		t.Errorf("same-variable similarity = %v, want >= 0.5", unitPair)
	}
	// Same shape at a far scale (an unrelated measurement) must fall
	// clearly below the default materialization threshold θ = 0.85, so
	// the global schema does not link unrelated numeric columns.
	far := c.EncodeColumn(genValues(rng, 500, norm(150000, 30000)), TypeFloat)
	if got := Cosine(sqft, far); got >= 0.85 {
		t.Errorf("far-scale same-shape similarity = %v, want < theta (0.85)", got)
	}
	if got := Cosine(sqft, sqft2); got <= unitPair {
		t.Errorf("same-scale %v should exceed unit-pair %v", got, unitPair)
	}
}

func TestCoLRDates(t *testing.T) {
	c := NewCoLR()
	rng := rand.New(rand.NewSource(3))
	y2020 := c.EncodeColumn(genValues(rng, 100, func() string {
		return fmt.Sprintf("2020-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))
	}), TypeDate)
	y2020b := c.EncodeColumn(genValues(rng, 100, func() string {
		return fmt.Sprintf("2020-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))
	}), TypeDate)
	y1950 := c.EncodeColumn(genValues(rng, 100, func() string {
		return fmt.Sprintf("19%02d-%02d-%02d", 50+rng.Intn(5), 1+rng.Intn(12), 1+rng.Intn(28))
	}), TypeDate)
	if Cosine(y2020, y2020b) <= Cosine(y2020, y1950) {
		t.Errorf("same-era dates should be closer: %v vs %v", Cosine(y2020, y2020b), Cosine(y2020, y1950))
	}
}

func TestParseDate(t *testing.T) {
	ok := []string{"2020-05-17", "2020/05/17", "05/17/2020", "Jan 2, 2006", "2006-01-02 15:04:05"}
	for _, s := range ok {
		if _, parsed := ParseDate(s); !parsed {
			t.Errorf("ParseDate(%q) failed", s)
		}
	}
	for _, s := range []string{"hello", "123", ""} {
		if _, parsed := ParseDate(s); parsed {
			t.Errorf("ParseDate(%q) unexpectedly succeeded", s)
		}
	}
}

func TestSubsampling(t *testing.T) {
	c := NewCoLR()
	vals := make([]string, 20000)
	rng := rand.New(rand.NewSource(4))
	for i := range vals {
		vals[i] = fmt.Sprintf("%.3f", rng.NormFloat64())
	}
	full := &CoLR{Subsample: false}
	a := c.EncodeColumn(vals, TypeFloat)    // 10% sample
	b := full.EncodeColumn(vals, TypeFloat) // full column
	if got := Cosine(a, b); got < 0.95 {
		t.Errorf("subsampled vs full cosine = %v, want >= 0.95 (paper: comparable)", got)
	}
	// Sample size should honor the fraction and minimum.
	s := c.sample(vals)
	if len(s) != 2000 {
		t.Errorf("sample size = %d, want 2000 (10%% of 20000)", len(s))
	}
	small := c.sample(vals[:500])
	if len(small) != 500 {
		t.Errorf("small column sampled to %d, want all 500", len(small))
	}
}

func TestSampleDeterminism(t *testing.T) {
	c := NewCoLR()
	vals := make([]string, 5000)
	for i := range vals {
		vals[i] = fmt.Sprintf("v%d", i)
	}
	a, b := c.sample(vals), c.sample(vals)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not deterministic")
		}
	}
}

func TestTableEmbedding(t *testing.T) {
	c := NewCoLR()
	intCol := c.EncodeColumn([]string{"1", "2", "3"}, TypeInt)
	strCol := c.EncodeColumn([]string{"a", "b"}, TypeString)
	emb := TableEmbedding(map[Type][]Vector{
		TypeInt:    {intCol},
		TypeString: {strCol},
	})
	if len(emb) != TableDim {
		t.Fatalf("table dim = %d, want %d", len(emb), TableDim)
	}
	// The int block (index 0) holds intCol, string block (index 5) strCol,
	// all others zero.
	intBlock := Vector(emb[0:Dim])
	if Cosine(intBlock, intCol) < 0.999 {
		t.Error("int block mismatch")
	}
	dateBlock := Vector(emb[2*Dim : 3*Dim])
	if dateBlock.Norm() != 0 {
		t.Error("absent type block should be zero")
	}
}

func TestDatasetEmbedding(t *testing.T) {
	a := NewVector(TableDim)
	a[0] = 2
	b := NewVector(TableDim)
	b[0] = 4
	d := DatasetEmbedding([]Vector{a, b})
	if d[0] != 3 {
		t.Errorf("dataset embedding avg = %v", d[0])
	}
	if DatasetEmbedding(nil).Norm() != 0 {
		t.Error("empty dataset embedding should be zero")
	}
}

func TestCoarseMode(t *testing.T) {
	fine := NewCoLR()
	coarse := &CoLR{Coarse: true, Subsample: false}
	vals := []string{"10.5", "20.1", "30.7"}
	fv := fine.EncodeColumn(vals, TypeFloat)
	cv := coarse.EncodeColumn(vals, TypeFloat)
	if Cosine(fv, cv) > 0.99 {
		t.Error("coarse encoder should differ from fine-grained")
	}
	if cv.Norm() == 0 {
		t.Error("coarse embedding empty")
	}
}

func TestEmbeddingIsNormalized(t *testing.T) {
	c := NewCoLR()
	for _, typ := range AllTypes {
		v := c.EncodeColumn([]string{"1", "2", "x", "2020-01-01", "true"}, typ)
		if n := v.Norm(); math.Abs(n-1) > 1e-9 && n != 0 {
			t.Errorf("type %s: norm = %v", typ, n)
		}
	}
}
