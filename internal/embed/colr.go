package embed

import (
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Type is the fine-grained column data type inferred by the profiler
// (paper Section 3.2): 7 types; all except boolean receive CoLR embeddings,
// and the table embedding concatenates the 6 embedded types (Section 4.2).
type Type string

// The seven fine-grained types.
const (
	TypeInt             Type = "int"
	TypeFloat           Type = "float"
	TypeBoolean         Type = "boolean"
	TypeDate            Type = "date"
	TypeNamedEntity     Type = "named_entity"
	TypeNaturalLanguage Type = "natural_language"
	TypeString          Type = "string"
)

// EmbeddedTypes lists the fine-grained types that receive CoLR embeddings,
// in the canonical concatenation order of Eq. (1). len == 6, so table
// embeddings have 6*Dim = 1800 dimensions.
var EmbeddedTypes = []Type{TypeInt, TypeFloat, TypeDate, TypeNamedEntity, TypeNaturalLanguage, TypeString}

// AllTypes lists all seven fine-grained types.
var AllTypes = []Type{TypeInt, TypeFloat, TypeBoolean, TypeDate, TypeNamedEntity, TypeNaturalLanguage, TypeString}

// TableDim is the dimensionality of table/dataset embeddings (Eq. 1).
const TableDim = Dim * 6 // 1800

// CoLR generates column content embeddings. One encoder exists per
// fine-grained type, matching the paper's per-type models H_{θ,T}.
//
// The trained models' purpose is that two columns embed close when their
// raw values overlap, their distributions are similar, or they measure the
// same variable in different units. The substituted encoders realize those
// invariances directly:
//
//   - string-like types hash character trigrams and whole values, so raw
//     value overlap produces shared dimensions;
//   - numeric types combine a z-scored soft histogram (unit-invariant
//     distribution shape) with soft log-magnitude features (raw-scale
//     overlap);
//   - dates decompose into calendar features.
type CoLR struct {
	// SampleFraction is the fraction of values sampled per column
	// (Algorithm 2 line 9; the paper uses 10%).
	SampleFraction float64
	// MinSample is the minimum sample size (paper: 1000).
	MinSample int
	// Subsample toggles sampling; the Figure 6 ablation disables it.
	Subsample bool
	// Coarse switches to a single type-agnostic encoder, reproducing the
	// "coarse-grained" baseline models of the Figure 6 ablation.
	Coarse bool
}

// NewCoLR returns the default configuration (10% subsampling, fine-grained).
func NewCoLR() *CoLR {
	return &CoLR{SampleFraction: 0.10, MinSample: 1000, Subsample: true}
}

// EncodeColumn embeds a column's non-null lexical values under the encoder
// for fine-grained type t. The result is L2-normalized.
func (c *CoLR) EncodeColumn(values []string, t Type) Vector {
	return c.EncodeSampled(c.sample(values), t)
}

// EncodeSampled embeds values that have already been sampled, skipping
// the internal subsampling pass. The streaming profiler uses this: its
// bounded reservoir reproduces sample's selection (same SampleHash, same
// hash ordering) incrementally, then encodes the reservoir contents
// as-is. EncodeColumn(values) == EncodeSampled(sample(values)).
func (c *CoLR) EncodeSampled(sample []string, t Type) Vector {
	v := NewVector(Dim)
	if len(sample) == 0 {
		return v
	}
	if c.Coarse {
		for _, s := range sample {
			encodeStringValue(v, s, 1.0/float64(len(sample)))
		}
		v.Normalize()
		return v
	}
	switch t {
	case TypeInt, TypeFloat:
		c.encodeNumeric(v, sample)
	case TypeDate:
		c.encodeDates(v, sample)
	case TypeBoolean:
		// Booleans are compared via true-ratio, not embeddings (Alg. 3);
		// still produce a coarse signature so table embeddings are stable.
		for _, s := range sample {
			addHashed(v, "bool:"+strings.ToLower(s), 1.0/float64(len(sample)))
		}
	default: // named_entity, natural_language, string
		for _, s := range sample {
			encodeStringValue(v, s, 1.0/float64(len(sample)))
		}
	}
	v.Normalize()
	return v
}

// SampleHash is the deterministic pseudo-random rank of value s at
// non-null position i within its column: the n values with the smallest
// hashes form the column's sample. Exported so the streaming profiler's
// bounded reservoir selects exactly the values the in-memory sample
// would — same hash, same ordering, identical embedding.
func SampleHash(s string, i int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	var ib [8]byte
	for b := 0; b < 8; b++ {
		ib[b] = byte(i >> (8 * b))
	}
	h.Write(ib[:])
	return h.Sum64()
}

// SampleSize returns how many values the sampler keeps for a column of n
// non-null values, or n itself when the column is passed through whole.
func (c *CoLR) SampleSize(n int) int {
	if !c.Subsample || n <= c.MinSample {
		return n
	}
	k := int(c.SampleFraction * float64(n))
	if k < c.MinSample {
		k = c.MinSample
	}
	if k >= n {
		return n
	}
	return k
}

// sample draws a deterministic pseudo-random sample of the values
// (hash-ordered), honoring SampleFraction and MinSample.
func (c *CoLR) sample(values []string) []string {
	n := c.SampleSize(len(values))
	if n >= len(values) {
		return values
	}
	type hv struct {
		h uint64
		i int
	}
	hs := make([]hv, len(values))
	for i, s := range values {
		hs[i] = hv{h: SampleHash(s, i), i: i}
	}
	sort.Slice(hs, func(a, b int) bool { return hs[a].h < hs[b].h })
	out := make([]string, n)
	for k := 0; k < n; k++ {
		out[k] = values[hs[k].i]
	}
	return out
}

// encodeStringValue hashes the whole value and its character trigrams.
func encodeStringValue(v Vector, s string, w float64) {
	ls := strings.ToLower(strings.TrimSpace(s))
	addHashed(v, "val:"+ls, 2.0*w)
	padded := "^" + ls + "$"
	for i := 0; i+3 <= len(padded); i++ {
		addHashed(v, "tri:"+padded[i:i+3], w)
	}
	for _, tok := range strings.Fields(ls) {
		addHashed(v, "tok:"+tok, w)
	}
}

// encodeNumeric embeds a numeric sample: a z-scored soft histogram captures
// unit-invariant distribution shape, and log-magnitude features capture raw
// scale so exact-value overlap still dominates.
func (c *CoLR) encodeNumeric(v Vector, sample []string) {
	vals := make([]float64, 0, len(sample))
	for _, s := range sample {
		if f, err := strconv.ParseFloat(strings.TrimSpace(s), 64); err == nil && !math.IsNaN(f) && !math.IsInf(f, 0) {
			vals = append(vals, f)
		}
	}
	if len(vals) == 0 {
		return
	}
	mean, std := meanStd(vals)
	if std == 0 {
		std = 1
	}
	w := 1.0 / float64(len(vals))
	for _, f := range vals {
		// Raw-value overlap is the paper's first similarity criterion;
		// exact values dominate for columns sharing actual data (e.g.
		// horizontal partitions of one source table).
		addHashed(v, "nval:"+strconv.FormatFloat(f, 'g', -1, 64), 1.5*w)
		z := (f - mean) / std
		// Soft histogram over 25 RBF centers in [-3, 3].
		for k := 0; k < 25; k++ {
			center := -3.0 + 6.0*float64(k)/24.0
			d := (z - center) / 0.25
			wk := math.Exp(-d * d)
			if wk > 1e-3 {
				addHashed(v, "zbin:"+itoa(k), wk*w)
			}
		}
		// Log-magnitude soft bins over [0, 10]. The weight balances two
		// competing goals: same-variable-different-unit columns should
		// stay fairly similar (z-histograms dominate), while same-shape
		// columns from unrelated sources at different scales should fall
		// below the materialization threshold θ.
		mag := math.Log10(math.Abs(f) + 1)
		for k := 0; k < 30; k++ {
			center := 10.0 * float64(k) / 29.0
			d := (mag - center) / 0.3
			wk := math.Exp(-d * d)
			if wk > 1e-3 {
				addHashed(v, "mbin:"+itoa(k), 0.35*wk*w)
			}
		}
		if f < 0 {
			addHashed(v, "neg", 0.5*w)
		}
		if f == math.Trunc(f) {
			addHashed(v, "intlike", 0.25*w)
		}
	}
}

// dateLayouts are the formats the date encoder and the profiler's type
// inference both recognize.
var dateLayouts = []string{
	"2006-01-02", "2006/01/02", "01/02/2006", "02-01-2006",
	"2006-01-02 15:04:05", "2006-01-02T15:04:05", "Jan 2, 2006",
	"2 Jan 2006", "January 2, 2006", "2006-01",
}

// ParseDate attempts to parse s with the supported layouts.
func ParseDate(s string) (time.Time, bool) {
	t := strings.TrimSpace(s)
	for _, layout := range dateLayouts {
		if parsed, err := time.Parse(layout, t); err == nil {
			return parsed, true
		}
	}
	return time.Time{}, false
}

func (c *CoLR) encodeDates(v Vector, sample []string) {
	w := 1.0 / float64(len(sample))
	for _, s := range sample {
		d, ok := ParseDate(s)
		if !ok {
			encodeStringValue(v, s, w)
			continue
		}
		addHashed(v, "year:"+itoa(d.Year()), w)
		addHashed(v, "decade:"+itoa(d.Year()/10), 0.5*w)
		addHashed(v, "month:"+itoa(int(d.Month())), 0.5*w)
		addHashed(v, "dow:"+itoa(int(d.Weekday())), 0.25*w)
	}
}

func meanStd(vals []float64) (mean, std float64) {
	for _, f := range vals {
		mean += f
	}
	mean /= float64(len(vals))
	var ss float64
	for _, f := range vals {
		d := f - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(vals)))
}

// TableEmbedding implements Eq. (1): the concatenation over the six
// embedded fine-grained types of the average column embedding of that type.
// byType maps each type to the column embeddings of that type present in
// the table; absent types contribute zero blocks.
func TableEmbedding(byType map[Type][]Vector) Vector {
	out := NewVector(0)
	for _, t := range EmbeddedTypes {
		block := NewVector(Dim)
		cols := byType[t]
		if len(cols) > 0 {
			for _, cv := range cols {
				block.Add(cv)
			}
			block.Scale(1 / float64(len(cols)))
		}
		out = append(out, block...)
	}
	return out
}

// DatasetEmbedding aggregates table embeddings into a dataset embedding by
// averaging (paper Section 3.2: "an embedding of a dataset is an
// aggregation of its tables' embeddings").
func DatasetEmbedding(tables []Vector) Vector {
	out := NewVector(TableDim)
	if len(tables) == 0 {
		return out
	}
	for _, t := range tables {
		out.Add(t)
	}
	out.Scale(1 / float64(len(tables)))
	return out
}
