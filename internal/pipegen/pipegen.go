// Package pipegen generates synthetic data-science pipeline scripts. The
// paper's pipeline experiments (Figure 4, Tables 3 and 4, and the GNN
// training corpora of Section 4) use 13,800 Kaggle scripts over the
// top-1000 datasets; offline, this generator produces scripts with the
// same structure — imports, read_csv, cleaning, transformation, modelling,
// evaluation — following Figure 4's empirical library mix, with votes and
// scores as pipeline metadata.
package pipegen

import (
	"fmt"
	"math/rand"
	"strings"

	"kglids/internal/cleaning"
	"kglids/internal/dataframe"
	"kglids/internal/pipeline"
	"kglids/internal/transform"
)

// Figure 4's library usage over 13,215-pipeline corpus, normalized to
// per-pipeline inclusion probabilities (pandas ≈ 96%, matplotlib ≈ 81%,
// sklearn ≈ 54%, ...).
var libraryProb = map[string]float64{
	"pandas":      0.957,
	"matplotlib":  0.810,
	"sklearn":     0.536,
	"plotly":      0.202,
	"scipy":       0.109,
	"xgboost":     0.069,
	"wordcloud":   0.066,
	"IPython":     0.065,
	"nltk":        0.056,
	"statsmodels": 0.056,
}

// Classifier templates: constructor call with plausible hyperparameters.
var classifierTemplates = []struct {
	imp  string
	call string
}{
	{"from sklearn.ensemble import RandomForestClassifier", "RandomForestClassifier(n_estimators=%d, max_depth=%d)"},
	{"from sklearn.linear_model import LogisticRegression", "LogisticRegression(C=%d.0, max_iter=%d)"},
	{"from sklearn.tree import DecisionTreeClassifier", "DecisionTreeClassifier(max_depth=%d, min_samples_split=%d)"},
	{"from sklearn.neighbors import KNeighborsClassifier", "KNeighborsClassifier(n_neighbors=%d, p=%d)"},
	{"from sklearn.ensemble import GradientBoostingClassifier", "GradientBoostingClassifier(n_estimators=%d, max_depth=%d)"},
	{"from sklearn.svm import SVC", "SVC(C=%d.0, degree=%d)"},
}

var xgbTemplate = struct {
	imp  string
	call string
}{"import xgboost", "xgboost.XGBClassifier(n_estimators=%d, max_depth=%d)"}

// Dataset describes the dataset a generated pipeline reads.
type Dataset struct {
	Name    string // e.g. "titanic"
	Table   string // e.g. "train.csv"
	Columns []string
	Target  string
}

// Options controls corpus generation.
type Options struct {
	NumPipelines int
	Datasets     []Dataset
	Seed         int64
}

// AppliedOps records which cleaning/transform/model choices a generated
// script contains — the ground truth used to build GNN training examples.
type AppliedOps struct {
	Cleaning   cleaning.Op
	Scaler     transform.ScalerOp
	Unary      transform.UnaryOp
	Classifier string // qualified name
	Params     map[string]string
}

// Generated pairs a script with its applied operations.
type Generated struct {
	Script pipeline.Script
	Ops    AppliedOps
}

// cleaningSnippets maps each cleaning op to the code it appears as.
var cleaningSnippets = map[cleaning.Op]struct {
	imp  string
	code []string
}{
	cleaning.OpFillna:      {"", []string{"df = df.fillna(0)"}},
	cleaning.OpInterpolate: {"", []string{"df = df.interpolate(method='linear')"}},
	cleaning.OpSimpleImputer: {"from sklearn.impute import SimpleImputer", []string{
		"imputer = SimpleImputer(strategy='most_frequent')",
		"X['%s'] = imputer.fit_transform(X['%s'])",
	}},
	cleaning.OpKNNImputer: {"from sklearn.impute import KNNImputer", []string{
		"imputer = KNNImputer(n_neighbors=5)",
		"X['%s'] = imputer.fit_transform(X['%s'])",
	}},
	cleaning.OpIterativeImputer: {"from sklearn.impute import IterativeImputer", []string{
		"imputer = IterativeImputer(max_iter=10)",
		"X['%s'] = imputer.fit_transform(X['%s'])",
	}},
}

var scalerSnippets = map[transform.ScalerOp]struct {
	imp  string
	code []string
}{
	transform.ScalerStandard: {"from sklearn.preprocessing import StandardScaler", []string{
		"scaler = StandardScaler()",
		"X['%s'] = scaler.fit_transform(X['%s'])",
	}},
	transform.ScalerMinMax: {"from sklearn.preprocessing import MinMaxScaler", []string{
		"scaler = MinMaxScaler()",
		"X['%s'] = scaler.fit_transform(X['%s'])",
	}},
	transform.ScalerRobust: {"from sklearn.preprocessing import RobustScaler", []string{
		"scaler = RobustScaler()",
		"X['%s'] = scaler.fit_transform(X['%s'])",
	}},
}

// Generate produces a corpus of scripts.
func Generate(opts Options) []Generated {
	rng := rand.New(rand.NewSource(opts.Seed))
	out := make([]Generated, 0, opts.NumPipelines)
	for i := 0; i < opts.NumPipelines; i++ {
		ds := opts.Datasets[rng.Intn(len(opts.Datasets))]
		g := generateOne(rng, ds, i)
		out = append(out, g)
	}
	return out
}

func generateOne(rng *rand.Rand, ds Dataset, idx int) Generated {
	var imports []string
	var body []string
	ops := AppliedOps{Params: map[string]string{}}

	use := func(lib string) bool { return rng.Float64() < libraryProb[lib] }

	// Optional libraries are imported AND called, since Figure 4 counts
	// pipelines calling each library.
	var eda []string
	imports = append(imports, "import pandas as pd") // pandas ~always
	if use("matplotlib") {
		imports = append(imports, "import matplotlib.pyplot as plt")
		eda = append(eda, "plt.hist(df['%s'])")
	}
	if use("plotly") {
		imports = append(imports, "import plotly.express as px")
		eda = append(eda, "fig = px.scatter(df, x='%s')")
	}
	if use("scipy") {
		imports = append(imports, "from scipy import stats")
		eda = append(eda, "z = stats.zscore(df['%s'])")
	}
	if use("wordcloud") {
		imports = append(imports, "from wordcloud import WordCloud")
		eda = append(eda, "wc = WordCloud(width=800)")
	}
	if use("IPython") {
		imports = append(imports, "from IPython.display import display")
		eda = append(eda, "shown = display(df)")
	}
	if use("nltk") {
		imports = append(imports, "import nltk")
		eda = append(eda, "tokens = nltk.word_tokenize('%s')")
	}
	if use("statsmodels") {
		imports = append(imports, "import statsmodels.api as sm")
		eda = append(eda, "ols = sm.OLS(df['%s'], df)")
	}

	body = append(body, fmt.Sprintf("df = pd.read_csv('%s/%s')", ds.Name, ds.Table))
	edaCol := ds.Columns[rng.Intn(len(ds.Columns))]
	for _, line := range eda {
		if strings.Contains(line, "%s") {
			body = append(body, fmt.Sprintf(line, edaCol))
		} else {
			body = append(body, line)
		}
	}
	col := ds.Columns[rng.Intn(len(ds.Columns))]
	for col == ds.Target && len(ds.Columns) > 1 {
		col = ds.Columns[rng.Intn(len(ds.Columns))]
	}
	body = append(body, fmt.Sprintf("X, y = df.drop('%s', axis=1), df['%s']", ds.Target, ds.Target))

	// Cleaning step.
	ci := rng.Intn(len(cleaning.Ops))
	ops.Cleaning = cleaning.Ops[ci]
	snippet := cleaningSnippets[ops.Cleaning]
	if snippet.imp != "" {
		imports = append(imports, snippet.imp)
	}
	for _, line := range snippet.code {
		if strings.Contains(line, "%s") {
			body = append(body, fmt.Sprintf(line, col, col))
		} else {
			body = append(body, line)
		}
	}

	// Scaling + unary transformation.
	si := rng.Intn(len(transform.Scalers))
	ops.Scaler = transform.Scalers[si]
	ssnip := scalerSnippets[ops.Scaler]
	imports = append(imports, ssnip.imp)
	for _, line := range ssnip.code {
		if strings.Contains(line, "%s") {
			body = append(body, fmt.Sprintf(line, col, col))
		} else {
			body = append(body, line)
		}
	}
	ops.Unary = transform.Unaries[rng.Intn(len(transform.Unaries))]
	if ops.Unary != transform.UnaryNone {
		imports = append(imports, "import numpy as np")
		fn := "log1p"
		if ops.Unary == transform.UnarySqrt {
			fn = "sqrt"
		}
		body = append(body, fmt.Sprintf("X['%s'] = np.%s(X['%s'])", col, fn, col))
	}

	// Modelling. Votes correlate with hyperparameter quality: highly-voted
	// Kaggle pipelines use best-practice values, which is exactly the
	// signal KGLiDS's hyperparameter recommendation mines (Section 4.4).
	votes := rng.Intn(2000)
	quality := votes > 800
	imports = append(imports, "from sklearn.model_selection import train_test_split")
	imports = append(imports, "from sklearn.metrics import accuracy_score")
	body = append(body, "X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.2)")
	useXGB := rng.Float64() < libraryProb["xgboost"]
	if useXGB {
		imports = append(imports, xgbTemplate.imp)
		a, b := 50+rng.Intn(6)*50, 3+rng.Intn(8)
		if quality {
			a, b = 100+rng.Intn(3)*50, 6+rng.Intn(4)
		}
		body = append(body, fmt.Sprintf("clf = "+xgbTemplate.call, a, b))
		ops.Classifier = "xgboost.XGBClassifier"
		ops.Params["n_estimators"] = fmt.Sprintf("%d", a)
		ops.Params["max_depth"] = fmt.Sprintf("%d", b)
	} else {
		tmpl := classifierTemplates[rng.Intn(len(classifierTemplates))]
		imports = append(imports, tmpl.imp)
		a, b := hyperA(rng, tmpl.call, quality), hyperB(rng, tmpl.call, quality)
		body = append(body, fmt.Sprintf("clf = "+tmpl.call, a, b))
		ops.Classifier = classifierQualified(tmpl.imp, tmpl.call)
		p1, p2 := paramNames(tmpl.call)
		ops.Params[p1] = fmt.Sprintf("%d", a)
		ops.Params[p2] = fmt.Sprintf("%d", b)
	}
	body = append(body, "clf.fit(X_train, y_train)")
	body = append(body, "print(accuracy_score(y_test, clf.predict(X_test)))")

	src := strings.Join(imports, "\n") + "\n\n" + strings.Join(body, "\n") + "\n"
	id := fmt.Sprintf("kaggle/%s/pipeline_%05d", ds.Name, idx)
	return Generated{
		Script: pipeline.Script{
			ID:     id,
			Source: src,
			Meta: pipeline.Metadata{
				Author:  fmt.Sprintf("user_%03d", rng.Intn(500)),
				Dataset: ds.Name,
				Task:    "classification",
				Votes:   votes,
				Score:   0.5 + rng.Float64()*0.5,
			},
		},
		Ops: ops,
	}
}

func hyperA(rng *rand.Rand, call string, quality bool) int {
	switch {
	case strings.Contains(call, "n_estimators"):
		if quality {
			return 100 + rng.Intn(3)*50
		}
		return []int{1, 2, 5, 10, 25, 50}[rng.Intn(6)]
	case strings.Contains(call, "C="):
		if quality {
			return 1 + rng.Intn(2)
		}
		return 1 + rng.Intn(10)
	case strings.Contains(call, "n_neighbors"):
		if quality {
			return 5 + rng.Intn(3)
		}
		return []int{1, 3, 15, 21}[rng.Intn(4)]
	default:
		if quality {
			return 7 + rng.Intn(4)
		}
		return []int{2, 3, 15}[rng.Intn(3)]
	}
}

func hyperB(rng *rand.Rand, call string, quality bool) int {
	switch {
	case strings.Contains(call, "max_iter"):
		if quality {
			return 200 + rng.Intn(2)*100
		}
		return 50 * (1 + rng.Intn(4))
	case strings.Contains(call, "max_depth"):
		if quality {
			return 7 + rng.Intn(6)
		}
		return []int{1, 2, 3, 15}[rng.Intn(4)]
	case strings.Contains(call, "min_samples_split"):
		return 2 + rng.Intn(8)
	default:
		return 2 + rng.Intn(4)
	}
}

func paramNames(call string) (string, string) {
	// Extract the two keyword names from the template.
	var names []string
	for _, part := range strings.Split(call[strings.Index(call, "(")+1:], ",") {
		if i := strings.IndexByte(part, '='); i >= 0 {
			names = append(names, strings.TrimSpace(part[:i]))
		}
	}
	if len(names) < 2 {
		return "a", "b"
	}
	return names[0], names[1]
}

func classifierQualified(imp, call string) string {
	// "from sklearn.x import Y" + "Y(...)" → "sklearn.x.Y"
	fields := strings.Fields(imp)
	if len(fields) == 4 && fields[0] == "from" {
		return fields[1] + "." + fields[3]
	}
	name := call[:strings.Index(call, "(")]
	return name
}

// FrameDataset adapts a raw DataFrame to a Dataset spec.
func FrameDataset(datasetName string, df *dataframe.DataFrame, target string) Dataset {
	return Dataset{Name: datasetName, Table: df.Name, Columns: df.Columns(), Target: target}
}
