package pipegen

import (
	"testing"

	"kglids/internal/pipeline"
)

func testDatasets() []Dataset {
	return []Dataset{
		{Name: "titanic", Table: "train.csv", Columns: []string{"Age", "Sex", "Fare", "Survived"}, Target: "Survived"},
		{Name: "heart", Table: "heart.csv", Columns: []string{"age", "chol", "target"}, Target: "target"},
	}
}

func TestGenerateParseable(t *testing.T) {
	corpus := Generate(Options{NumPipelines: 100, Datasets: testDatasets(), Seed: 1})
	if len(corpus) != 100 {
		t.Fatalf("corpus = %d", len(corpus))
	}
	a := pipeline.NewAbstractor()
	failures := 0
	for _, g := range corpus {
		abs := a.Abstract(g.Script)
		if abs.ParseError != nil {
			failures++
			t.Logf("parse error in %s: %v\n%s", g.Script.ID, abs.ParseError, g.Script.Source)
		}
	}
	if failures > 0 {
		t.Fatalf("%d/100 scripts unparseable", failures)
	}
}

func TestGeneratedStructure(t *testing.T) {
	corpus := Generate(Options{NumPipelines: 50, Datasets: testDatasets(), Seed: 2})
	a := pipeline.NewAbstractor()
	for _, g := range corpus[:10] {
		abs := a.Abstract(g.Script)
		// Every script reads its dataset.
		foundRead := false
		for _, s := range abs.Statements {
			if len(s.TableReads) > 0 {
				foundRead = true
			}
		}
		if !foundRead {
			t.Errorf("%s has no dataset read", g.Script.ID)
		}
		if g.Script.Meta.Dataset == "" || g.Script.Meta.Task != "classification" {
			t.Errorf("metadata incomplete: %+v", g.Script.Meta)
		}
		if g.Ops.Classifier == "" || len(g.Ops.Params) == 0 {
			t.Errorf("ops not recorded: %+v", g.Ops)
		}
	}
}

func TestLibraryMixFollowsFigure4(t *testing.T) {
	corpus := Generate(Options{NumPipelines: 400, Datasets: testDatasets(), Seed: 3})
	a := pipeline.NewAbstractor()
	var abss []*pipeline.Abstraction
	for _, g := range corpus {
		abss = append(abss, a.Abstract(g.Script))
	}
	top := pipeline.TopLibraries(abss, 3)
	if len(top) < 3 {
		t.Fatalf("top libraries = %v", top)
	}
	if top[0].Library != "pandas" {
		t.Errorf("top library = %s, want pandas (Figure 4)", top[0].Library)
	}
	// pandas usage ≈ 100% of scripts, matplotlib ≈ 80%.
	if top[0].Pipelines < 380 {
		t.Errorf("pandas pipelines = %d/400", top[0].Pipelines)
	}
	counts := map[string]int{}
	for _, lc := range pipeline.TopLibraries(abss, 0) {
		counts[lc.Library] = lc.Pipelines
	}
	if counts["matplotlib"] < 250 || counts["matplotlib"] > 380 {
		t.Errorf("matplotlib = %d/400, want ~324", counts["matplotlib"])
	}
	if counts["xgboost"] > counts["sklearn"] {
		t.Error("xgboost should trail sklearn")
	}
}

func TestOpsDistribution(t *testing.T) {
	corpus := Generate(Options{NumPipelines: 300, Datasets: testDatasets(), Seed: 4})
	cleanCounts := map[string]int{}
	scalerCounts := map[string]int{}
	for _, g := range corpus {
		cleanCounts[string(g.Ops.Cleaning)]++
		scalerCounts[string(g.Ops.Scaler)]++
	}
	if len(cleanCounts) != 5 {
		t.Errorf("cleaning ops seen = %v", cleanCounts)
	}
	if len(scalerCounts) != 3 {
		t.Errorf("scaler ops seen = %v", scalerCounts)
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Options{NumPipelines: 20, Datasets: testDatasets(), Seed: 5})
	b := Generate(Options{NumPipelines: 20, Datasets: testDatasets(), Seed: 5})
	for i := range a {
		if a[i].Script.Source != b[i].Script.Source {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestFrameDataset(t *testing.T) {
	ds := testDatasets()[0]
	if ds.Target != "Survived" {
		t.Skip("shape only")
	}
}
