package pyast

import (
	"strings"
	"testing"
)

// The paper's Figure 3 running example.
const figure3 = `# Imports ...
import pandas as pd
from sklearn.impute import SimpleImputer
from sklearn.preprocessing import StandardScaler
from sklearn.model_selection import train_test_split
from sklearn.ensemble import RandomForestClassifier
from sklearn.metrics import accuracy_score

# Read the dataset
df = pd.read_csv('titanic/train.csv')
X, y = df.drop('Survived', axis=1), df['Survived']
imputer = SimpleImputer(strategy='most_frequent')
X['Sex'] = imputer.fit_transform(X['Sex'])   # Cleaning
scaler = StandardScaler()
X['NormalizedAge'] = scaler.fit_transform(X['Age'])
# Split to train and test
X_train, y_train, X_test, y_test = train_test_split(X, y, 0.2)
# Train an RF classifier
clf = RandomForestClassifier(50, max_depth=10)
clf.fit(X_train, y_train)
# Evaluate the classifier
print(accuracy_score(y_test, clf.predict(X_test)))
`

func mustParse(t *testing.T, src string) *Module {
	t.Helper()
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse failed: %v", err)
	}
	return m
}

func TestParseFigure3(t *testing.T) {
	m := mustParse(t, figure3)
	if len(m.Body) != 16 {
		for _, s := range m.Body {
			t.Logf("line %d: %s", s.Pos(), StmtText(s))
		}
		t.Fatalf("statements = %d, want 16", len(m.Body))
	}
	// Statement 1: import pandas as pd.
	imp, ok := m.Body[0].(*ImportStmt)
	if !ok || imp.Names[0].Name != "pandas" || imp.Names[0].AsName != "pd" {
		t.Errorf("stmt 0 = %v", StmtText(m.Body[0]))
	}
	if imp.Names[0].Bound() != "pd" {
		t.Errorf("bound = %q", imp.Names[0].Bound())
	}
	// df = pd.read_csv(...)
	assign, ok := m.Body[6].(*AssignStmt)
	if !ok {
		t.Fatalf("stmt 6 = %T", m.Body[6])
	}
	call, ok := assign.Value.(*Call)
	if !ok {
		t.Fatalf("assign value = %T", assign.Value)
	}
	if call.Func.String() != "pd.read_csv" {
		t.Errorf("call func = %q", call.Func.String())
	}
	if s, ok := call.Args[0].(*Str); !ok || s.Value != "titanic/train.csv" {
		t.Errorf("call arg = %v", call.Args[0])
	}
	// Tuple assignment X, y = ...
	tassign := m.Body[7].(*AssignStmt)
	if _, ok := tassign.Targets[0].(*TupleLit); !ok {
		t.Errorf("tuple target = %T", tassign.Targets[0])
	}
	if _, ok := tassign.Value.(*TupleLit); !ok {
		t.Errorf("tuple value = %T", tassign.Value)
	}
	// RandomForestClassifier(50, max_depth=10): positional + keyword.
	rf := m.Body[13].(*AssignStmt).Value.(*Call)
	if len(rf.Args) != 1 || len(rf.Keywords) != 1 {
		t.Errorf("RF call args = %d, kwargs = %d", len(rf.Args), len(rf.Keywords))
	}
	if rf.Keywords[0].Name != "max_depth" {
		t.Errorf("kwarg = %q", rf.Keywords[0].Name)
	}
	// Line numbers survive.
	if m.Body[6].Pos() != 10 {
		t.Errorf("read_csv line = %d, want 10", m.Body[6].Pos())
	}
}

func TestParseSubscripts(t *testing.T) {
	m := mustParse(t, "x = df['Survived']\ny = df[0]\nz = df[1:3]\nw = df[:5]\n")
	sub := m.Body[0].(*AssignStmt).Value.(*Subscript)
	if s, ok := sub.Index.(*Str); !ok || s.Value != "Survived" {
		t.Errorf("string index = %v", sub.Index)
	}
	if _, ok := m.Body[2].(*AssignStmt).Value.(*Subscript).Index.(*SliceExpr); !ok {
		t.Error("slice index not parsed")
	}
	if _, ok := m.Body[3].(*AssignStmt).Value.(*Subscript).Index.(*SliceExpr); !ok {
		t.Error("leading-colon slice not parsed")
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `for i in range(10):
    x = i * 2
    if x > 5:
        y = x
    elif x > 2:
        y = 0
    else:
        y = -1
while y > 0:
    y -= 1

def helper(a, b=2):
    return a + b
`
	m := mustParse(t, src)
	if len(m.Body) != 3 {
		t.Fatalf("top-level statements = %d, want 3", len(m.Body))
	}
	f := m.Body[0].(*ForStmt)
	if len(f.Body) != 2 {
		t.Errorf("for body = %d", len(f.Body))
	}
	ifs := f.Body[1].(*IfStmt)
	if len(ifs.Body) != 1 || len(ifs.Orelse) != 1 {
		t.Errorf("if shape: body=%d orelse=%d", len(ifs.Body), len(ifs.Orelse))
	}
	if _, ok := ifs.Orelse[0].(*IfStmt); !ok {
		t.Error("elif not nested as IfStmt")
	}
	w := m.Body[1].(*WhileStmt)
	if aug := w.Body[0].(*AssignStmt); aug.Op != "-=" {
		t.Errorf("augmented op = %q", aug.Op)
	}
	def := m.Body[2].(*FuncDef)
	if def.Name != "helper" || len(def.Params) != 2 {
		t.Errorf("def = %q params %v", def.Name, def.Params)
	}
	if _, ok := def.Body[0].(*ReturnStmt); !ok {
		t.Error("return not parsed")
	}
}

func TestParseFromImport(t *testing.T) {
	m := mustParse(t, "from sklearn.linear_model import LogisticRegression, Ridge as R\n")
	fi := m.Body[0].(*FromImportStmt)
	if fi.Module != "sklearn.linear_model" {
		t.Errorf("module = %q", fi.Module)
	}
	if len(fi.Names) != 2 || fi.Names[1].AsName != "R" {
		t.Errorf("names = %v", fi.Names)
	}
}

func TestParseLiterals(t *testing.T) {
	src := "a = [1, 2.5, 'x']\nb = {'k': 1, 'j': 2}\nc = (1, 2)\nd = True\ne = None\nf = -3\n"
	m := mustParse(t, src)
	lst := m.Body[0].(*AssignStmt).Value.(*ListLit)
	if len(lst.Elts) != 3 {
		t.Errorf("list = %v", lst)
	}
	d := m.Body[1].(*AssignStmt).Value.(*DictLit)
	if len(d.Keys) != 2 {
		t.Errorf("dict = %v", d)
	}
	tu := m.Body[2].(*AssignStmt).Value.(*TupleLit)
	if len(tu.Elts) != 2 {
		t.Errorf("tuple = %v", tu)
	}
	if b := m.Body[3].(*AssignStmt).Value.(*BoolLit); !b.Value {
		t.Error("True literal")
	}
	if _, ok := m.Body[4].(*AssignStmt).Value.(*NoneLit); !ok {
		t.Error("None literal")
	}
	if u := m.Body[5].(*AssignStmt).Value.(*UnaryOp); u.Op != "-" {
		t.Error("unary minus")
	}
}

func TestParseOperators(t *testing.T) {
	m := mustParse(t, "x = a + b * c ** 2\ny = a == b and c != d or not e\nz = a in b\n")
	add := m.Body[0].(*AssignStmt).Value.(*BinOp)
	if add.Op != "+" {
		t.Errorf("top op = %q", add.Op)
	}
	mul := add.Right.(*BinOp)
	if mul.Op != "*" {
		t.Errorf("mul op = %q", mul.Op)
	}
	if pow := mul.Right.(*BinOp); pow.Op != "**" {
		t.Errorf("pow op = %q", pow.Op)
	}
	or := m.Body[1].(*AssignStmt).Value.(*BinOp)
	if or.Op != "or" {
		t.Errorf("bool op = %q", or.Op)
	}
	if in := m.Body[2].(*AssignStmt).Value.(*BinOp); in.Op != "in" {
		t.Errorf("in op = %q", in.Op)
	}
}

func TestMultilineCall(t *testing.T) {
	src := `model = RandomForestClassifier(
    n_estimators=100,
    max_depth=5,
)
`
	m := mustParse(t, src)
	call := m.Body[0].(*AssignStmt).Value.(*Call)
	if len(call.Keywords) != 2 {
		t.Errorf("kwargs = %d", len(call.Keywords))
	}
}

func TestTripleQuotedAndFStrings(t *testing.T) {
	src := "doc = \"\"\"hello\nworld\"\"\"\nmsg = f'value is {x}'\n"
	m := mustParse(t, src)
	if s := m.Body[0].(*AssignStmt).Value.(*Str); !strings.Contains(s.Value, "hello") {
		t.Errorf("triple string = %q", s.Value)
	}
	if _, ok := m.Body[1].(*AssignStmt).Value.(*Str); !ok {
		t.Error("f-string not treated as string")
	}
}

func TestComprehensionsAbsorbed(t *testing.T) {
	src := "xs = [i * 2 for i in range(10)]\nys = sorted(x for x in xs)\n"
	m := mustParse(t, src)
	if len(m.Body) != 2 {
		t.Fatalf("statements = %d", len(m.Body))
	}
}

func TestWithAndTry(t *testing.T) {
	src := `with open('f.csv') as f:
    data = f.read()
try:
    x = 1
except ValueError as e:
    x = 2
finally:
    y = 3
`
	m := mustParse(t, src)
	w := m.Body[0].(*WithStmt)
	if w.AsName != "f" || len(w.Body) != 1 {
		t.Errorf("with = %+v", w)
	}
	tr := m.Body[1].(*TryStmt)
	if len(tr.Body) != 1 || len(tr.Handler) != 1 || len(tr.Final) != 1 {
		t.Errorf("try shape: %d/%d/%d", len(tr.Body), len(tr.Handler), len(tr.Final))
	}
}

func TestChainedAssignment(t *testing.T) {
	m := mustParse(t, "a = b = compute()\n")
	as := m.Body[0].(*AssignStmt)
	if len(as.Targets) != 2 {
		t.Errorf("targets = %d", len(as.Targets))
	}
}

func TestStmtText(t *testing.T) {
	m := mustParse(t, figure3)
	texts := map[int]string{
		0: "import pandas as pd",
		6: "df = pd.read_csv('titanic/train.csv')",
	}
	for i, want := range texts {
		if got := StmtText(m.Body[i]); got != want {
			t.Errorf("StmtText[%d] = %q, want %q", i, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"x = 'unterminated\n",
		"def f(:\n",
		"x = )\n",
		"from import y\n",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestEmptyAndCommentsOnly(t *testing.T) {
	m := mustParse(t, "\n# just a comment\n\n   \n")
	if len(m.Body) != 0 {
		t.Errorf("statements = %d", len(m.Body))
	}
}

func TestDeepNesting(t *testing.T) {
	src := `if a:
    if b:
        if c:
            x = 1
        y = 2
    z = 3
w = 4
`
	m := mustParse(t, src)
	if len(m.Body) != 2 {
		t.Fatalf("top = %d", len(m.Body))
	}
	lvl1 := m.Body[0].(*IfStmt)
	lvl2 := lvl1.Body[0].(*IfStmt)
	lvl3 := lvl2.Body[0].(*IfStmt)
	if len(lvl3.Body) != 1 || len(lvl2.Body) != 2 || len(lvl1.Body) != 2 {
		t.Error("nesting structure wrong")
	}
}

func TestLineContinuation(t *testing.T) {
	m := mustParse(t, "x = 1 + \\\n    2\n")
	if len(m.Body) != 1 {
		t.Fatalf("statements = %d", len(m.Body))
	}
}
