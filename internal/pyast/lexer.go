// Package pyast is a lexer and parser for the subset of Python that data
// science pipeline scripts use. It substitutes for Python's ast/astor in
// KGLiDS's Pipeline Abstraction (paper Section 3.1): statements become AST
// nodes with line numbers, and the pipeline abstractor walks them to build
// control/data-flow graphs.
//
// Supported: imports, (augmented/tuple) assignments, expression statements,
// if/elif/else, for, while, def, return, pass/break/continue, calls with
// positional and keyword arguments, attribute access, subscripts, literals
// (numbers, strings, f-strings as plain text, booleans, None), lists,
// tuples, dicts, lambdas, unary/binary/comparison/boolean operators.
package pyast

import (
	"fmt"
	"strings"
)

// TokKind classifies lexer tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokNewline
	TokIndent
	TokDedent
	TokName
	TokNumber
	TokString
	TokOp
	TokKeyword
)

// Tok is one lexical token.
type Tok struct {
	Kind TokKind
	Text string
	Line int
}

var pyKeywords = map[string]bool{
	"import": true, "from": true, "as": true, "def": true, "return": true,
	"if": true, "elif": true, "else": true, "for": true, "while": true,
	"in": true, "not": true, "and": true, "or": true, "is": true,
	"pass": true, "break": true, "continue": true, "lambda": true,
	"True": true, "False": true, "None": true, "with": true, "try": true,
	"except": true, "finally": true, "raise": true, "class": true,
	"global": true, "del": true, "assert": true, "yield": true,
}

// multi-character operators, longest first.
var multiOps = []string{
	"**=", "//=", "==", "!=", "<=", ">=", "->", "+=", "-=", "*=", "/=",
	"%=", "**", "//", "&=", "|=",
}

type pyLexer struct {
	src         string
	pos         int
	line        int
	indents     []int
	paren       int
	toks        []Tok
	atLineStart bool
}

// Lex tokenizes Python source, emitting INDENT/DEDENT/NEWLINE tokens.
func Lex(src string) ([]Tok, error) {
	l := &pyLexer{src: src, line: 1, indents: []int{0}, atLineStart: true}
	for l.pos < len(l.src) {
		if l.atLineStart && l.paren == 0 {
			if err := l.handleIndent(); err != nil {
				return nil, err
			}
			if l.pos >= len(l.src) {
				break
			}
		}
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.pos++
			l.line++
			if l.paren == 0 {
				l.emitNewline()
				l.atLineStart = true
			}
		case c == '\\' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '\n':
			l.pos += 2
			l.line++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '"' || c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case (c == 'f' || c == 'r' || c == 'b' || c == 'F' || c == 'R' || c == 'B') &&
			l.pos+1 < len(l.src) && (l.src[l.pos+1] == '"' || l.src[l.pos+1] == '\''):
			l.pos++ // skip prefix; treat as plain string
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case isPyDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isPyDigit(l.src[l.pos+1])):
			l.lexNumber()
		case isPyNameStart(c):
			l.lexName()
		default:
			l.lexOp()
		}
	}
	// Close the final line and any open indents.
	l.emitNewline()
	for len(l.indents) > 1 {
		l.indents = l.indents[:len(l.indents)-1]
		l.toks = append(l.toks, Tok{Kind: TokDedent, Line: l.line})
	}
	l.toks = append(l.toks, Tok{Kind: TokEOF, Line: l.line})
	return l.toks, nil
}

// emitNewline appends a NEWLINE unless the last significant token already
// is one (or nothing has been emitted on this line).
func (l *pyLexer) emitNewline() {
	if len(l.toks) == 0 {
		return
	}
	switch l.toks[len(l.toks)-1].Kind {
	case TokNewline, TokIndent, TokDedent:
		return
	}
	l.toks = append(l.toks, Tok{Kind: TokNewline, Line: l.line})
}

func (l *pyLexer) handleIndent() error {
	// Measure leading whitespace; skip blank/comment-only lines entirely.
	for {
		start := l.pos
		col := 0
		for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t') {
			if l.src[l.pos] == '\t' {
				col += 8 - col%8
			} else {
				col++
			}
			l.pos++
		}
		if l.pos >= len(l.src) {
			return nil
		}
		if l.src[l.pos] == '\n' {
			l.pos++
			l.line++
			continue
		}
		if l.src[l.pos] == '#' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		cur := l.indents[len(l.indents)-1]
		switch {
		case col > cur:
			l.indents = append(l.indents, col)
			l.toks = append(l.toks, Tok{Kind: TokIndent, Line: l.line})
		case col < cur:
			for len(l.indents) > 1 && l.indents[len(l.indents)-1] > col {
				l.indents = l.indents[:len(l.indents)-1]
				l.toks = append(l.toks, Tok{Kind: TokDedent, Line: l.line})
			}
			if l.indents[len(l.indents)-1] != col {
				return fmt.Errorf("pyast: line %d: inconsistent dedent (col %d, start %d)", l.line, col, start)
			}
		}
		l.atLineStart = false
		return nil
	}
}

func (l *pyLexer) lexString() error {
	quote := l.src[l.pos]
	startLine := l.line
	// Triple-quoted?
	if l.pos+2 < len(l.src) && l.src[l.pos+1] == quote && l.src[l.pos+2] == quote {
		l.pos += 3
		var sb strings.Builder
		for l.pos+2 < len(l.src) {
			if l.src[l.pos] == quote && l.src[l.pos+1] == quote && l.src[l.pos+2] == quote {
				l.pos += 3
				l.toks = append(l.toks, Tok{Kind: TokString, Text: sb.String(), Line: startLine})
				return nil
			}
			if l.src[l.pos] == '\n' {
				l.line++
			}
			sb.WriteByte(l.src[l.pos])
			l.pos++
		}
		return fmt.Errorf("pyast: line %d: unterminated triple-quoted string", startLine)
	}
	l.pos++
	var sb strings.Builder
	for l.pos < len(l.src) && l.src[l.pos] != quote {
		if l.src[l.pos] == '\n' {
			return fmt.Errorf("pyast: line %d: unterminated string", startLine)
		}
		if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			switch l.src[l.pos] {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			default:
				sb.WriteByte(l.src[l.pos])
			}
			l.pos++
			continue
		}
		sb.WriteByte(l.src[l.pos])
		l.pos++
	}
	if l.pos >= len(l.src) {
		return fmt.Errorf("pyast: line %d: unterminated string", startLine)
	}
	l.pos++
	l.toks = append(l.toks, Tok{Kind: TokString, Text: sb.String(), Line: startLine})
	return nil
}

func (l *pyLexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) && (isPyDigit(l.src[l.pos]) || l.src[l.pos] == '.' ||
		l.src[l.pos] == 'e' || l.src[l.pos] == 'E' || l.src[l.pos] == '_' ||
		((l.src[l.pos] == '+' || l.src[l.pos] == '-') && l.pos > start && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
		l.pos++
	}
	text := strings.ReplaceAll(l.src[start:l.pos], "_", "")
	l.toks = append(l.toks, Tok{Kind: TokNumber, Text: text, Line: l.line})
}

func (l *pyLexer) lexName() {
	start := l.pos
	for l.pos < len(l.src) && isPyNameChar(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	kind := TokName
	if pyKeywords[text] {
		kind = TokKeyword
	}
	l.toks = append(l.toks, Tok{Kind: kind, Text: text, Line: l.line})
}

func (l *pyLexer) lexOp() {
	for _, op := range multiOps {
		if strings.HasPrefix(l.src[l.pos:], op) {
			l.toks = append(l.toks, Tok{Kind: TokOp, Text: op, Line: l.line})
			l.pos += len(op)
			return
		}
	}
	c := l.src[l.pos]
	switch c {
	case '(', '[', '{':
		l.paren++
	case ')', ']', '}':
		if l.paren > 0 {
			l.paren--
		}
	}
	l.toks = append(l.toks, Tok{Kind: TokOp, Text: string(c), Line: l.line})
	l.pos++
}

func isPyDigit(c byte) bool     { return c >= '0' && c <= '9' }
func isPyNameStart(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isPyNameChar(c byte) bool  { return isPyNameStart(c) || isPyDigit(c) }
