package pyast

import (
	"fmt"
	"strconv"
)

// Parse parses Python source into a Module.
func Parse(src string) (*Module, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &pyParser{toks: toks}
	body, err := p.parseStatements(false)
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != TokEOF {
		return nil, fmt.Errorf("pyast: line %d: unexpected %q", p.cur().Line, p.cur().Text)
	}
	return &Module{Body: body}, nil
}

type pyParser struct {
	toks []Tok
	i    int
}

func (p *pyParser) cur() Tok  { return p.toks[p.i] }
func (p *pyParser) next() Tok { t := p.toks[p.i]; p.i++; return t }

func (p *pyParser) acceptOp(text string) bool {
	if t := p.cur(); t.Kind == TokOp && t.Text == text {
		p.i++
		return true
	}
	return false
}

func (p *pyParser) acceptKw(text string) bool {
	if t := p.cur(); t.Kind == TokKeyword && t.Text == text {
		p.i++
		return true
	}
	return false
}

func (p *pyParser) expectOp(text string) error {
	if !p.acceptOp(text) {
		return fmt.Errorf("pyast: line %d: expected %q, got %q", p.cur().Line, text, p.cur().Text)
	}
	return nil
}

func (p *pyParser) skipNewlines() {
	for p.cur().Kind == TokNewline {
		p.i++
	}
}

// parseStatements parses a statement sequence; when inBlock, the sequence
// ends at DEDENT, otherwise at EOF.
func (p *pyParser) parseStatements(inBlock bool) ([]Stmt, error) {
	var out []Stmt
	for {
		p.skipNewlines()
		t := p.cur()
		if t.Kind == TokEOF {
			return out, nil
		}
		if t.Kind == TokDedent {
			if inBlock {
				return out, nil
			}
			return nil, fmt.Errorf("pyast: line %d: unexpected dedent", t.Line)
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		if s != nil {
			out = append(out, s)
		}
	}
}

// parseBlock parses ": NEWLINE INDENT stmts DEDENT" (or a one-line suite).
func (p *pyParser) parseBlock() ([]Stmt, error) {
	if err := p.expectOp(":"); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokNewline {
		// One-line suite: "if x: y = 1".
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return []Stmt{s}, nil
	}
	p.skipNewlines()
	if p.cur().Kind != TokIndent {
		return nil, fmt.Errorf("pyast: line %d: expected indented block", p.cur().Line)
	}
	p.i++
	body, err := p.parseStatements(true)
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != TokDedent {
		return nil, fmt.Errorf("pyast: line %d: expected dedent", p.cur().Line)
	}
	p.i++
	return body, nil
}

func (p *pyParser) parseStatement() (Stmt, error) {
	t := p.cur()
	if t.Kind == TokKeyword {
		switch t.Text {
		case "import":
			return p.parseImport()
		case "from":
			return p.parseFromImport()
		case "if":
			return p.parseIf()
		case "for":
			return p.parseFor()
		case "while":
			return p.parseWhile()
		case "def":
			return p.parseDef()
		case "return":
			p.i++
			if p.cur().Kind == TokNewline || p.cur().Kind == TokEOF || p.cur().Kind == TokDedent {
				return &ReturnStmt{pos: pos{t.Line}}, nil
			}
			v, err := p.parseExprList()
			if err != nil {
				return nil, err
			}
			return &ReturnStmt{pos: pos{t.Line}, Value: v}, nil
		case "pass", "break", "continue":
			p.i++
			return &SimpleStmt{pos: pos{t.Line}, Keyword: t.Text}, nil
		case "global", "del", "assert", "raise":
			// Record the keyword, skip the rest of the line.
			p.i++
			p.skipToLineEnd()
			return &SimpleStmt{pos: pos{t.Line}, Keyword: t.Text}, nil
		case "with":
			return p.parseWith()
		case "try":
			return p.parseTry()
		case "class":
			// Treat a class as an opaque function-like block.
			p.i++
			name := p.cur().Text
			p.skipToColon()
			body, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			return &FuncDef{pos: pos{t.Line}, Name: name, Body: body}, nil
		}
	}
	return p.parseExprOrAssign()
}

func (p *pyParser) skipToLineEnd() {
	depth := 0
	for {
		t := p.cur()
		if t.Kind == TokEOF {
			return
		}
		if t.Kind == TokNewline && depth == 0 {
			return
		}
		if t.Kind == TokOp {
			switch t.Text {
			case "(", "[", "{":
				depth++
			case ")", "]", "}":
				depth--
			}
		}
		p.i++
	}
}

func (p *pyParser) skipToColon() {
	for {
		t := p.cur()
		if t.Kind == TokEOF || (t.Kind == TokOp && t.Text == ":") {
			return
		}
		p.i++
	}
}

func (p *pyParser) parseImport() (Stmt, error) {
	line := p.cur().Line
	p.i++ // import
	stmt := &ImportStmt{pos: pos{line}}
	for {
		name, err := p.parseDottedName()
		if err != nil {
			return nil, err
		}
		alias := ImportAlias{Name: name}
		if p.acceptKw("as") {
			alias.AsName = p.next().Text
		}
		stmt.Names = append(stmt.Names, alias)
		if !p.acceptOp(",") {
			break
		}
	}
	return stmt, nil
}

func (p *pyParser) parseFromImport() (Stmt, error) {
	line := p.cur().Line
	p.i++ // from
	module, err := p.parseDottedName()
	if err != nil {
		return nil, err
	}
	if !p.acceptKw("import") {
		return nil, fmt.Errorf("pyast: line %d: expected 'import'", p.cur().Line)
	}
	stmt := &FromImportStmt{pos: pos{line}, Module: module}
	if p.acceptOp("*") {
		stmt.Names = append(stmt.Names, ImportAlias{Name: "*"})
		return stmt, nil
	}
	paren := p.acceptOp("(")
	for {
		if p.cur().Kind != TokName {
			return nil, fmt.Errorf("pyast: line %d: expected name in import", p.cur().Line)
		}
		alias := ImportAlias{Name: p.next().Text}
		if p.acceptKw("as") {
			alias.AsName = p.next().Text
		}
		stmt.Names = append(stmt.Names, alias)
		if !p.acceptOp(",") {
			break
		}
	}
	if paren {
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

func (p *pyParser) parseDottedName() (string, error) {
	if p.cur().Kind != TokName {
		return "", fmt.Errorf("pyast: line %d: expected module name", p.cur().Line)
	}
	name := p.next().Text
	for p.acceptOp(".") {
		if p.cur().Kind != TokName {
			return "", fmt.Errorf("pyast: line %d: expected name after '.'", p.cur().Line)
		}
		name += "." + p.next().Text
	}
	return name, nil
}

func (p *pyParser) parseIf() (Stmt, error) {
	line := p.cur().Line
	p.i++ // if / elif
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	stmt := &IfStmt{pos: pos{line}, Cond: cond, Body: body}
	p.skipNewlines()
	if t := p.cur(); t.Kind == TokKeyword && t.Text == "elif" {
		nested, err := p.parseIf()
		if err != nil {
			return nil, err
		}
		stmt.Orelse = []Stmt{nested}
	} else if p.acceptKw("else") {
		orelse, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		stmt.Orelse = orelse
	}
	return stmt, nil
}

func (p *pyParser) parseFor() (Stmt, error) {
	line := p.cur().Line
	p.i++ // for
	target, err := p.parseTargetList()
	if err != nil {
		return nil, err
	}
	if !p.acceptKw("in") {
		return nil, fmt.Errorf("pyast: line %d: expected 'in'", p.cur().Line)
	}
	iter, err := p.parseExprList()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &ForStmt{pos: pos{line}, Target: target, Iter: iter, Body: body}, nil
}

func (p *pyParser) parseWhile() (Stmt, error) {
	line := p.cur().Line
	p.i++ // while
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{pos: pos{line}, Cond: cond, Body: body}, nil
}

func (p *pyParser) parseDef() (Stmt, error) {
	line := p.cur().Line
	p.i++ // def
	if p.cur().Kind != TokName {
		return nil, fmt.Errorf("pyast: line %d: expected function name", p.cur().Line)
	}
	name := p.next().Text
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var params []string
	for p.cur().Kind != TokOp || p.cur().Text != ")" {
		if p.cur().Kind == TokEOF {
			return nil, fmt.Errorf("pyast: unterminated parameter list for %s", name)
		}
		// Accept *args / **kwargs markers.
		p.acceptOp("*")
		p.acceptOp("*")
		if p.cur().Kind == TokName {
			params = append(params, p.next().Text)
			// Default value or annotation: skip to , or ).
			depth := 0
			for {
				t := p.cur()
				if t.Kind == TokEOF {
					break
				}
				if t.Kind == TokOp {
					if depth == 0 && (t.Text == "," || t.Text == ")") {
						break
					}
					switch t.Text {
					case "(", "[", "{":
						depth++
					case ")", "]", "}":
						depth--
					}
				}
				p.i++
			}
		}
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	// Return annotation.
	if p.acceptOp("->") {
		p.skipToColon()
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &FuncDef{pos: pos{line}, Name: name, Params: params, Body: body}, nil
}

func (p *pyParser) parseWith() (Stmt, error) {
	line := p.cur().Line
	p.i++ // with
	ctx, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	asName := ""
	if p.acceptKw("as") {
		asName = p.next().Text
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WithStmt{pos: pos{line}, Context: ctx, AsName: asName, Body: body}, nil
}

func (p *pyParser) parseTry() (Stmt, error) {
	line := p.cur().Line
	p.i++ // try
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	stmt := &TryStmt{pos: pos{line}, Body: body}
	p.skipNewlines()
	for p.cur().Kind == TokKeyword && p.cur().Text == "except" {
		p.i++
		p.skipToColon()
		handler, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		stmt.Handler = append(stmt.Handler, handler...)
		p.skipNewlines()
	}
	if p.acceptKw("finally") {
		final, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		stmt.Final = final
	}
	if p.acceptKw("else") {
		orelse, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		stmt.Final = append(stmt.Final, orelse...)
	}
	return stmt, nil
}

// parseExprOrAssign handles assignments (plain, chained, augmented, tuple
// targets) and bare expression statements.
func (p *pyParser) parseExprOrAssign() (Stmt, error) {
	line := p.cur().Line
	first, err := p.parseExprList()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokOp {
		switch t.Text {
		case "=":
			// Possibly chained: a = b = expr.
			targets := []Expr{first}
			var value Expr
			for p.acceptOp("=") {
				e, err := p.parseExprList()
				if err != nil {
					return nil, err
				}
				targets = append(targets, e)
			}
			value = targets[len(targets)-1]
			targets = targets[:len(targets)-1]
			return &AssignStmt{pos: pos{line}, Targets: targets, Op: "=", Value: value}, nil
		case "+=", "-=", "*=", "/=", "%=", "**=", "//=", "&=", "|=":
			p.i++
			value, err := p.parseExprList()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{pos: pos{line}, Targets: []Expr{first}, Op: t.Text, Value: value}, nil
		}
	}
	return &ExprStmt{pos: pos{line}, X: first}, nil
}

// parseTargetList parses "a" or "a, b" as a for-loop target. Targets are
// postfix expressions (names, attributes, subscripts), so the 'in' keyword
// is never consumed as a comparison operator here.
func (p *pyParser) parseTargetList() (Expr, error) {
	paren := p.acceptOp("(")
	first, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != TokOp || p.cur().Text != "," {
		if paren {
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		}
		return first, nil
	}
	tuple := &TupleLit{pos: pos{first.Pos()}, Elts: []Expr{first}}
	for p.acceptOp(",") {
		if t := p.cur(); t.Kind == TokKeyword && t.Text == "in" {
			break
		}
		e, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		tuple.Elts = append(tuple.Elts, e)
	}
	if paren {
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	return tuple, nil
}

// parseExprList parses "e [, e]*" into a TupleLit when more than one.
func (p *pyParser) parseExprList() (Expr, error) {
	first, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != TokOp || p.cur().Text != "," {
		return first, nil
	}
	tuple := &TupleLit{pos: pos{first.Pos()}, Elts: []Expr{first}}
	for p.acceptOp(",") {
		// Trailing comma.
		t := p.cur()
		if t.Kind == TokNewline || t.Kind == TokEOF || (t.Kind == TokOp && (t.Text == "=" || t.Text == ")" || t.Text == "]" || t.Text == "}")) {
			break
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		tuple.Elts = append(tuple.Elts, e)
	}
	return tuple, nil
}

// Expression precedence: or < and < not < comparison < addition <
// multiplication < unary < power < postfix.
func (p *pyParser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *pyParser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinOp{pos: pos{left.Pos()}, Op: "or", Left: left, Right: right}
	}
	return left, nil
}

func (p *pyParser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("and") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinOp{pos: pos{left.Pos()}, Op: "and", Left: left, Right: right}
	}
	return left, nil
}

func (p *pyParser) parseNot() (Expr, error) {
	if t := p.cur(); t.Kind == TokKeyword && t.Text == "not" {
		p.i++
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{pos: pos{t.Line}, Op: "not", X: x}, nil
	}
	return p.parseComparison()
}

func (p *pyParser) parseComparison() (Expr, error) {
	left, err := p.parseAddition()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		var op string
		switch {
		case t.Kind == TokOp && (t.Text == "==" || t.Text == "!=" || t.Text == "<" || t.Text == "<=" || t.Text == ">" || t.Text == ">="):
			op = t.Text
			p.i++
		case t.Kind == TokKeyword && t.Text == "in":
			op = "in"
			p.i++
		case t.Kind == TokKeyword && t.Text == "is":
			op = "is"
			p.i++
			if p.acceptKw("not") {
				op = "is not"
			}
		case t.Kind == TokKeyword && t.Text == "not":
			// "not in"
			if p.i+1 < len(p.toks) && p.toks[p.i+1].Kind == TokKeyword && p.toks[p.i+1].Text == "in" {
				p.i += 2
				op = "not in"
			} else {
				return left, nil
			}
		default:
			return left, nil
		}
		right, err := p.parseAddition()
		if err != nil {
			return nil, err
		}
		left = &BinOp{pos: pos{left.Pos()}, Op: op, Left: left, Right: right}
	}
}

func (p *pyParser) parseAddition() (Expr, error) {
	left, err := p.parseMultiplication()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokOp || (t.Text != "+" && t.Text != "-" && t.Text != "|" && t.Text != "&") {
			return left, nil
		}
		p.i++
		right, err := p.parseMultiplication()
		if err != nil {
			return nil, err
		}
		left = &BinOp{pos: pos{left.Pos()}, Op: t.Text, Left: left, Right: right}
	}
}

func (p *pyParser) parseMultiplication() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokOp || (t.Text != "*" && t.Text != "/" && t.Text != "%" && t.Text != "//") {
			return left, nil
		}
		p.i++
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinOp{pos: pos{left.Pos()}, Op: t.Text, Left: left, Right: right}
	}
}

func (p *pyParser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokOp && (t.Text == "-" || t.Text == "+" || t.Text == "~") {
		p.i++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{pos: pos{t.Line}, Op: t.Text, X: x}, nil
	}
	return p.parsePower()
}

func (p *pyParser) parsePower() (Expr, error) {
	left, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.Kind == TokOp && t.Text == "**" {
		p.i++
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinOp{pos: pos{left.Pos()}, Op: "**", Left: left, Right: right}, nil
	}
	return left, nil
}

// parsePostfix parses a primary followed by call/attribute/subscript
// suffixes.
func (p *pyParser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokOp {
			return e, nil
		}
		switch t.Text {
		case ".":
			p.i++
			if p.cur().Kind != TokName {
				return nil, fmt.Errorf("pyast: line %d: expected attribute name", p.cur().Line)
			}
			e = &Attribute{pos: pos{t.Line}, Value: e, Attr: p.next().Text}
		case "(":
			p.i++
			call := &Call{pos: pos{t.Line}, Func: e}
			for p.cur().Kind != TokOp || p.cur().Text != ")" {
				if p.cur().Kind == TokEOF {
					return nil, fmt.Errorf("pyast: line %d: unterminated call", t.Line)
				}
				// *args / **kwargs spread.
				p.acceptOp("*")
				p.acceptOp("*")
				// keyword argument?
				if p.cur().Kind == TokName && p.i+1 < len(p.toks) && p.toks[p.i+1].Kind == TokOp && p.toks[p.i+1].Text == "=" {
					name := p.next().Text
					p.i++ // '='
					v, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Keywords = append(call.Keywords, Keyword{Name: name, Value: v})
				} else {
					v, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					// Generator expression "f(x for x in y)": absorb.
					if p.cur().Kind == TokKeyword && p.cur().Text == "for" {
						p.skipBalancedUntilCloseParen()
					}
					call.Args = append(call.Args, v)
				}
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			e = call
		case "[":
			p.i++
			idx, err := p.parseSubscriptIndex()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp("]"); err != nil {
				return nil, err
			}
			e = &Subscript{pos: pos{t.Line}, Value: e, Index: idx}
		default:
			return e, nil
		}
	}
}

func (p *pyParser) skipBalancedUntilCloseParen() {
	depth := 0
	for {
		t := p.cur()
		if t.Kind == TokEOF {
			return
		}
		if t.Kind == TokOp {
			switch t.Text {
			case "(", "[", "{":
				depth++
			case ")":
				if depth == 0 {
					return
				}
				depth--
			case "]", "}":
				depth--
			case ",":
				if depth == 0 {
					return
				}
			}
		}
		p.i++
	}
}

func (p *pyParser) parseSubscriptIndex() (Expr, error) {
	line := p.cur().Line
	// Leading-colon slice.
	if p.cur().Kind == TokOp && p.cur().Text == ":" {
		p.i++
		sl := &SliceExpr{pos: pos{line}}
		if p.cur().Kind != TokOp || (p.cur().Text != "]" && p.cur().Text != ":") {
			hi, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sl.Hi = hi
		}
		return sl, nil
	}
	first, err := p.parseExprList()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokOp && p.cur().Text == ":" {
		p.i++
		sl := &SliceExpr{pos: pos{line}, Lo: first}
		if p.cur().Kind != TokOp || (p.cur().Text != "]" && p.cur().Text != ":") {
			hi, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sl.Hi = hi
		}
		return sl, nil
	}
	return first, nil
}

func (p *pyParser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokName:
		p.i++
		return &Name{pos: pos{t.Line}, ID: t.Text}, nil
	case TokNumber:
		p.i++
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, fmt.Errorf("pyast: line %d: bad number %q", t.Line, t.Text)
		}
		return &Num{pos: pos{t.Line}, Value: f, Text: t.Text}, nil
	case TokString:
		p.i++
		val := t.Text
		// Adjacent string literal concatenation.
		for p.cur().Kind == TokString {
			val += p.next().Text
		}
		return &Str{pos: pos{t.Line}, Value: val}, nil
	case TokKeyword:
		switch t.Text {
		case "True":
			p.i++
			return &BoolLit{pos: pos{t.Line}, Value: true}, nil
		case "False":
			p.i++
			return &BoolLit{pos: pos{t.Line}, Value: false}, nil
		case "None":
			p.i++
			return &NoneLit{pos: pos{t.Line}}, nil
		case "lambda":
			p.i++
			var params []string
			for p.cur().Kind == TokName {
				params = append(params, p.next().Text)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(":"); err != nil {
				return nil, err
			}
			body, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &Lambda{pos: pos{t.Line}, Params: params, Body: body}, nil
		case "not":
			return p.parseNot()
		}
	case TokOp:
		switch t.Text {
		case "(":
			p.i++
			if p.acceptOp(")") {
				return &TupleLit{pos: pos{t.Line}}, nil
			}
			e, err := p.parseExprList()
			if err != nil {
				return nil, err
			}
			// Generator/conditional expressions inside parens: absorb.
			if p.cur().Kind == TokKeyword && (p.cur().Text == "for" || p.cur().Text == "if") {
				p.skipBalancedUntilCloseParen()
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "[":
			p.i++
			lst := &ListLit{pos: pos{t.Line}}
			for p.cur().Kind != TokOp || p.cur().Text != "]" {
				if p.cur().Kind == TokEOF {
					return nil, fmt.Errorf("pyast: line %d: unterminated list", t.Line)
				}
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				// List comprehension: absorb the rest.
				if p.cur().Kind == TokKeyword && p.cur().Text == "for" {
					p.skipBalancedUntilCloseBracket()
				}
				lst.Elts = append(lst.Elts, e)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp("]"); err != nil {
				return nil, err
			}
			return lst, nil
		case "{":
			p.i++
			d := &DictLit{pos: pos{t.Line}}
			for p.cur().Kind != TokOp || p.cur().Text != "}" {
				if p.cur().Kind == TokEOF {
					return nil, fmt.Errorf("pyast: line %d: unterminated dict", t.Line)
				}
				k, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if p.acceptOp(":") {
					v, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					d.Keys = append(d.Keys, k)
					d.Values = append(d.Values, v)
				} else {
					// Set literal: store as key with None value.
					d.Keys = append(d.Keys, k)
					d.Values = append(d.Values, &NoneLit{pos: pos{t.Line}})
				}
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp("}"); err != nil {
				return nil, err
			}
			return d, nil
		}
	}
	return nil, fmt.Errorf("pyast: line %d: unexpected token %q", t.Line, t.Text)
}

func (p *pyParser) skipBalancedUntilCloseBracket() {
	depth := 0
	for {
		t := p.cur()
		if t.Kind == TokEOF {
			return
		}
		if t.Kind == TokOp {
			switch t.Text {
			case "(", "[", "{":
				depth++
			case "]":
				if depth == 0 {
					return
				}
				depth--
			case ")", "}":
				depth--
			}
		}
		p.i++
	}
}
