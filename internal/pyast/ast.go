package pyast

import (
	"fmt"
	"strings"
)

// Node is the common interface of statements and expressions.
type Node interface {
	// Pos returns the 1-based source line of the node.
	Pos() int
}

// Module is a parsed source file.
type Module struct {
	Body []Stmt
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
	// String renders Python-like source for the expression.
	String() string
}

type pos struct{ Line int }

// Pos implements Node.
func (p pos) Pos() int { return p.Line }

// ImportAlias is one "name [as asname]" clause.
type ImportAlias struct {
	Name   string
	AsName string
}

// Bound returns the variable the alias binds in scope.
func (a ImportAlias) Bound() string {
	if a.AsName != "" {
		return a.AsName
	}
	// "import a.b.c" binds "a".
	if i := strings.IndexByte(a.Name, '.'); i >= 0 {
		return a.Name[:i]
	}
	return a.Name
}

// ImportStmt is "import a as b, c".
type ImportStmt struct {
	pos
	Names []ImportAlias
}

// FromImportStmt is "from m import a as b, c".
type FromImportStmt struct {
	pos
	Module string
	Names  []ImportAlias
}

// AssignStmt is "t1 = t2 = value", "a, b = value", or "a += value"
// (Op holds "+=" etc.; "=" for plain assignment).
type AssignStmt struct {
	pos
	Targets []Expr
	Op      string
	Value   Expr
}

// ExprStmt is a bare expression (usually a call).
type ExprStmt struct {
	pos
	X Expr
}

// IfStmt is if/elif/else; Orelse holds either the else body or a single
// nested IfStmt for elif chains.
type IfStmt struct {
	pos
	Cond   Expr
	Body   []Stmt
	Orelse []Stmt
}

// ForStmt is "for target in iter: body".
type ForStmt struct {
	pos
	Target Expr
	Iter   Expr
	Body   []Stmt
}

// WhileStmt is "while cond: body".
type WhileStmt struct {
	pos
	Cond Expr
	Body []Stmt
}

// FuncDef is "def name(params): body".
type FuncDef struct {
	pos
	Name   string
	Params []string
	Body   []Stmt
}

// ReturnStmt is "return [value]".
type ReturnStmt struct {
	pos
	Value Expr // nil for bare return
}

// SimpleStmt covers pass/break/continue and other keywords we record but
// do not model ("global x", "del x", ...).
type SimpleStmt struct {
	pos
	Keyword string
}

// WithStmt is "with expr [as name]: body".
type WithStmt struct {
	pos
	Context Expr
	AsName  string
	Body    []Stmt
}

// TryStmt is try/except/finally; handlers are flattened.
type TryStmt struct {
	pos
	Body    []Stmt
	Handler []Stmt
	Final   []Stmt
}

func (*ImportStmt) stmtNode()     {}
func (*FromImportStmt) stmtNode() {}
func (*AssignStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()       {}
func (*IfStmt) stmtNode()         {}
func (*ForStmt) stmtNode()        {}
func (*WhileStmt) stmtNode()      {}
func (*FuncDef) stmtNode()        {}
func (*ReturnStmt) stmtNode()     {}
func (*SimpleStmt) stmtNode()     {}
func (*WithStmt) stmtNode()       {}
func (*TryStmt) stmtNode()        {}

// Name is an identifier.
type Name struct {
	pos
	ID string
}

// Attribute is "value.attr".
type Attribute struct {
	pos
	Value Expr
	Attr  string
}

// Keyword is one "name=value" call argument.
type Keyword struct {
	Name  string
	Value Expr
}

// Call is "func(args, kw=...)".
type Call struct {
	pos
	Func     Expr
	Args     []Expr
	Keywords []Keyword
}

// Subscript is "value[index]".
type Subscript struct {
	pos
	Value Expr
	Index Expr
}

// Str is a string literal.
type Str struct {
	pos
	Value string
}

// Num is a numeric literal.
type Num struct {
	pos
	Value float64
	Text  string
}

// BoolLit is True/False.
type BoolLit struct {
	pos
	Value bool
}

// NoneLit is None.
type NoneLit struct{ pos }

// ListLit is "[a, b]".
type ListLit struct {
	pos
	Elts []Expr
}

// TupleLit is "(a, b)" or a bare comma list.
type TupleLit struct {
	pos
	Elts []Expr
}

// DictLit is "{k: v}".
type DictLit struct {
	pos
	Keys   []Expr
	Values []Expr
}

// BinOp covers arithmetic, comparison, boolean, and membership operators.
type BinOp struct {
	pos
	Op          string
	Left, Right Expr
}

// UnaryOp is "-x" or "not x".
type UnaryOp struct {
	pos
	Op string
	X  Expr
}

// Lambda is "lambda params: body".
type Lambda struct {
	pos
	Params []string
	Body   Expr
}

// SliceExpr is "a:b[:c]" inside a subscript.
type SliceExpr struct {
	pos
	Lo, Hi, Step Expr // any may be nil
}

func (*Name) exprNode()      {}
func (*Attribute) exprNode() {}
func (*Call) exprNode()      {}
func (*Subscript) exprNode() {}
func (*Str) exprNode()       {}
func (*Num) exprNode()       {}
func (*BoolLit) exprNode()   {}
func (*NoneLit) exprNode()   {}
func (*ListLit) exprNode()   {}
func (*TupleLit) exprNode()  {}
func (*DictLit) exprNode()   {}
func (*BinOp) exprNode()     {}
func (*UnaryOp) exprNode()   {}
func (*Lambda) exprNode()    {}
func (*SliceExpr) exprNode() {}

// String renders expressions back to Python-like source; used for the
// "statement text" data property in the LiDS graph.
func (e *Name) String() string      { return e.ID }
func (e *Attribute) String() string { return e.Value.String() + "." + e.Attr }
func (e *Str) String() string       { return "'" + e.Value + "'" }
func (e *Num) String() string       { return e.Text }
func (e *BoolLit) String() string {
	if e.Value {
		return "True"
	}
	return "False"
}
func (e *NoneLit) String() string { return "None" }

func (e *Call) String() string {
	parts := make([]string, 0, len(e.Args)+len(e.Keywords))
	for _, a := range e.Args {
		parts = append(parts, a.String())
	}
	for _, k := range e.Keywords {
		parts = append(parts, k.Name+"="+k.Value.String())
	}
	return e.Func.String() + "(" + strings.Join(parts, ", ") + ")"
}

func (e *Subscript) String() string { return e.Value.String() + "[" + e.Index.String() + "]" }

func (e *ListLit) String() string {
	parts := make([]string, len(e.Elts))
	for i, x := range e.Elts {
		parts[i] = x.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

func (e *TupleLit) String() string {
	parts := make([]string, len(e.Elts))
	for i, x := range e.Elts {
		parts[i] = x.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func (e *DictLit) String() string {
	parts := make([]string, len(e.Keys))
	for i := range e.Keys {
		parts[i] = e.Keys[i].String() + ": " + e.Values[i].String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func (e *BinOp) String() string {
	return e.Left.String() + " " + e.Op + " " + e.Right.String()
}

func (e *UnaryOp) String() string {
	if e.Op == "not" {
		return "not " + e.X.String()
	}
	return e.Op + e.X.String()
}

func (e *Lambda) String() string {
	return "lambda " + strings.Join(e.Params, ", ") + ": " + e.Body.String()
}

func (e *SliceExpr) String() string {
	s := ""
	if e.Lo != nil {
		s += e.Lo.String()
	}
	s += ":"
	if e.Hi != nil {
		s += e.Hi.String()
	}
	if e.Step != nil {
		s += ":" + e.Step.String()
	}
	return s
}

// StmtText renders a one-line description of a statement for the
// statementText data property.
func StmtText(s Stmt) string {
	switch x := s.(type) {
	case *ImportStmt:
		parts := make([]string, len(x.Names))
		for i, a := range x.Names {
			parts[i] = a.Name
			if a.AsName != "" {
				parts[i] += " as " + a.AsName
			}
		}
		return "import " + strings.Join(parts, ", ")
	case *FromImportStmt:
		parts := make([]string, len(x.Names))
		for i, a := range x.Names {
			parts[i] = a.Name
			if a.AsName != "" {
				parts[i] += " as " + a.AsName
			}
		}
		return "from " + x.Module + " import " + strings.Join(parts, ", ")
	case *AssignStmt:
		tgt := make([]string, len(x.Targets))
		for i, t := range x.Targets {
			tgt[i] = t.String()
		}
		return strings.Join(tgt, " = ") + " " + x.Op + " " + x.Value.String()
	case *ExprStmt:
		return x.X.String()
	case *IfStmt:
		return "if " + x.Cond.String() + ":"
	case *ForStmt:
		return "for " + x.Target.String() + " in " + x.Iter.String() + ":"
	case *WhileStmt:
		return "while " + x.Cond.String() + ":"
	case *FuncDef:
		return "def " + x.Name + "(" + strings.Join(x.Params, ", ") + "):"
	case *ReturnStmt:
		if x.Value == nil {
			return "return"
		}
		return "return " + x.Value.String()
	case *SimpleStmt:
		return x.Keyword
	case *WithStmt:
		t := "with " + x.Context.String()
		if x.AsName != "" {
			t += " as " + x.AsName
		}
		return t + ":"
	case *TryStmt:
		return "try:"
	}
	return fmt.Sprintf("<%T>", s)
}
