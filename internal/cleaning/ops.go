// Package cleaning implements KGLiDS's on-demand data cleaning (paper
// Section 4.2): the five cleaning operations the GNN chooses between
// (Fillna, Interpolate, SimpleImputer, KNNImputer, IterativeImputer), an
// executor that applies a recommended operation to a DataFrame, and the
// GNN recommender trained over table embeddings mined from the LiDS graph.
package cleaning

import (
	"fmt"
	"math"
	"sort"

	"kglids/internal/dataframe"
)

// Op names one of the five cleaning operations (the GNN's output classes).
type Op string

// The five cleaning operations of Section 4.2.
const (
	OpFillna           Op = "Fillna"
	OpInterpolate      Op = "Interpolate"
	OpSimpleImputer    Op = "SimpleImputer"
	OpKNNImputer       Op = "KNNImputer"
	OpIterativeImputer Op = "IterativeImputer"
)

// Ops lists all operations in class-index order.
var Ops = []Op{OpFillna, OpInterpolate, OpSimpleImputer, OpKNNImputer, OpIterativeImputer}

// ClassOf returns the class index of an operation.
func ClassOf(op Op) int {
	for i, o := range Ops {
		if o == op {
			return i
		}
	}
	return -1
}

// Apply executes a cleaning operation, returning a cleaned copy of df
// (the apply_cleaning_operations API of Section 4.1).
func Apply(op Op, df *dataframe.DataFrame) (*dataframe.DataFrame, error) {
	switch op {
	case OpFillna:
		return FillNA(df), nil
	case OpInterpolate:
		return Interpolate(df), nil
	case OpSimpleImputer:
		return SimpleImpute(df, "mean"), nil
	case OpKNNImputer:
		return KNNImpute(df, 5), nil
	case OpIterativeImputer:
		return IterativeImpute(df, 5), nil
	default:
		return nil, fmt.Errorf("cleaning: unknown operation %q", op)
	}
}

// FillNA replaces numeric nulls with the column mean and categorical nulls
// with the column mode (pandas' df.fillna usage pattern).
func FillNA(df *dataframe.DataFrame) *dataframe.DataFrame {
	out := df.Clone()
	for i := 0; i < out.NumCols(); i++ {
		col := out.ColumnAt(i)
		if col.NullCount() == 0 {
			continue
		}
		if col.IsNumeric() {
			mean := col.Mean()
			for j, c := range col.Cells {
				if c.IsNull() {
					col.Cells[j] = dataframe.NumberCell(mean)
				}
			}
			continue
		}
		if mode, ok := col.Mode(); ok {
			for j, c := range col.Cells {
				if c.IsNull() {
					col.Cells[j] = dataframe.ParseCell(mode)
				}
			}
		}
	}
	return out
}

// Interpolate fills numeric nulls by linear interpolation between the
// nearest non-null neighbours (ends are extended); categorical columns
// fall back to mode fill.
func Interpolate(df *dataframe.DataFrame) *dataframe.DataFrame {
	out := df.Clone()
	for i := 0; i < out.NumCols(); i++ {
		col := out.ColumnAt(i)
		if col.NullCount() == 0 {
			continue
		}
		if !col.IsNumeric() {
			if mode, ok := col.Mode(); ok {
				for j, c := range col.Cells {
					if c.IsNull() {
						col.Cells[j] = dataframe.ParseCell(mode)
					}
				}
			}
			continue
		}
		n := len(col.Cells)
		for j := 0; j < n; j++ {
			if !col.Cells[j].IsNull() {
				continue
			}
			// Find previous and next non-null values.
			prev, next := -1, -1
			for k := j - 1; k >= 0; k-- {
				if !col.Cells[k].IsNull() {
					prev = k
					break
				}
			}
			for k := j + 1; k < n; k++ {
				if !col.Cells[k].IsNull() {
					next = k
					break
				}
			}
			var v float64
			switch {
			case prev >= 0 && next >= 0:
				frac := float64(j-prev) / float64(next-prev)
				v = col.Cells[prev].F + frac*(col.Cells[next].F-col.Cells[prev].F)
			case prev >= 0:
				v = col.Cells[prev].F
			case next >= 0:
				v = col.Cells[next].F
			default:
				v = 0
			}
			col.Cells[j] = dataframe.NumberCell(v)
		}
	}
	return out
}

// SimpleImpute mirrors sklearn's SimpleImputer: strategy "mean", "median",
// or "most_frequent" for numeric columns; categorical columns always use
// most_frequent.
func SimpleImpute(df *dataframe.DataFrame, strategy string) *dataframe.DataFrame {
	out := df.Clone()
	for i := 0; i < out.NumCols(); i++ {
		col := out.ColumnAt(i)
		if col.NullCount() == 0 {
			continue
		}
		if col.IsNumeric() {
			var fill float64
			switch strategy {
			case "median":
				fill = col.Quantile(0.5)
			case "most_frequent":
				if mode, ok := col.Mode(); ok {
					fill = dataframe.ParseCell(mode).F
				}
			default:
				fill = col.Mean()
			}
			for j, c := range col.Cells {
				if c.IsNull() {
					col.Cells[j] = dataframe.NumberCell(fill)
				}
			}
			continue
		}
		if mode, ok := col.Mode(); ok {
			for j, c := range col.Cells {
				if c.IsNull() {
					col.Cells[j] = dataframe.ParseCell(mode)
				}
			}
		}
	}
	return out
}

// KNNImpute fills numeric nulls with the mean of the k nearest rows by
// Euclidean distance over shared non-null numeric columns, mirroring
// sklearn's KNNImputer. Categorical nulls use mode fill.
func KNNImpute(df *dataframe.DataFrame, k int) *dataframe.DataFrame {
	out := SimpleImputeCategoricalOnly(df)
	// Numeric view of the table.
	var numCols []*dataframe.Series
	for i := 0; i < out.NumCols(); i++ {
		if out.ColumnAt(i).IsNumeric() {
			numCols = append(numCols, out.ColumnAt(i))
		}
	}
	if len(numCols) == 0 {
		return out
	}
	n := out.NumRows()
	type target struct{ col, row int }
	var targets []target
	for ci, col := range numCols {
		for ri, c := range col.Cells {
			if c.IsNull() {
				targets = append(targets, target{col: ci, row: ri})
			}
		}
	}
	dist := func(a, b int) (float64, bool) {
		s, cnt := 0.0, 0
		for _, col := range numCols {
			ca, cb := col.Cells[a], col.Cells[b]
			if ca.IsNull() || cb.IsNull() {
				continue
			}
			d := ca.F - cb.F
			s += d * d
			cnt++
		}
		if cnt == 0 {
			return 0, false
		}
		return s / float64(cnt), true
	}
	for _, tg := range targets {
		type cand struct {
			d float64
			v float64
		}
		var cands []cand
		for r := 0; r < n; r++ {
			if r == tg.row || numCols[tg.col].Cells[r].IsNull() {
				continue
			}
			if d, ok := dist(tg.row, r); ok {
				cands = append(cands, cand{d: d, v: numCols[tg.col].Cells[r].F})
			}
		}
		if len(cands) == 0 {
			numCols[tg.col].Cells[tg.row] = dataframe.NumberCell(numCols[tg.col].Mean())
			continue
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
		kk := k
		if kk > len(cands) {
			kk = len(cands)
		}
		sum := 0.0
		for _, c := range cands[:kk] {
			sum += c.v
		}
		numCols[tg.col].Cells[tg.row] = dataframe.NumberCell(sum / float64(kk))
	}
	return out
}

// SimpleImputeCategoricalOnly mode-fills categorical nulls, leaving numeric
// nulls untouched (shared prelude of KNN/Iterative imputation).
func SimpleImputeCategoricalOnly(df *dataframe.DataFrame) *dataframe.DataFrame {
	out := df.Clone()
	for i := 0; i < out.NumCols(); i++ {
		col := out.ColumnAt(i)
		if col.IsNumeric() || col.NullCount() == 0 {
			continue
		}
		if mode, ok := col.Mode(); ok {
			for j, c := range col.Cells {
				if c.IsNull() {
					col.Cells[j] = dataframe.ParseCell(mode)
				}
			}
		}
	}
	return out
}

// IterativeImpute mirrors sklearn's IterativeImputer: each numeric column
// with nulls is regressed (ridge) on the other numeric columns, iterating
// rounds until stable.
func IterativeImpute(df *dataframe.DataFrame, rounds int) *dataframe.DataFrame {
	out := SimpleImputeCategoricalOnly(df)
	var numCols []*dataframe.Series
	for i := 0; i < out.NumCols(); i++ {
		if out.ColumnAt(i).IsNumeric() {
			numCols = append(numCols, out.ColumnAt(i))
		}
	}
	if len(numCols) < 2 {
		return FillNA(out)
	}
	n := out.NumRows()
	// Track original null positions and start from mean fill.
	missing := make([][]bool, len(numCols))
	for ci, col := range numCols {
		missing[ci] = make([]bool, n)
		mean := col.Mean()
		for ri, c := range col.Cells {
			if c.IsNull() {
				missing[ci][ri] = true
				col.Cells[ri] = dataframe.NumberCell(mean)
			}
		}
	}
	for round := 0; round < rounds; round++ {
		for ci, col := range numCols {
			hasMissing := false
			for _, m := range missing[ci] {
				if m {
					hasMissing = true
					break
				}
			}
			if !hasMissing {
				continue
			}
			// Regress col on the others over originally-observed rows.
			var X [][]float64
			var y []float64
			for r := 0; r < n; r++ {
				if missing[ci][r] {
					continue
				}
				row := make([]float64, 0, len(numCols)-1)
				for cj, other := range numCols {
					if cj != ci {
						row = append(row, other.Cells[r].F)
					}
				}
				X = append(X, row)
				y = append(y, col.Cells[r].F)
			}
			w := ridgeFit(X, y, 1.0)
			for r := 0; r < n; r++ {
				if !missing[ci][r] {
					continue
				}
				row := make([]float64, 0, len(numCols)-1)
				for cj, other := range numCols {
					if cj != ci {
						row = append(row, other.Cells[r].F)
					}
				}
				col.Cells[r] = dataframe.NumberCell(ridgePredict(w, row))
			}
		}
	}
	return out
}

// ridgeFit solves ridge regression via gradient descent on standardized
// features; returns [bias, weights..., featMeans..., featStds..., yMean,
// yStd] packed for ridgePredict.
func ridgeFit(X [][]float64, y []float64, lambda float64) []float64 {
	if len(X) == 0 || len(X[0]) == 0 {
		return nil
	}
	nf := len(X[0])
	means := make([]float64, nf)
	stds := make([]float64, nf)
	for j := 0; j < nf; j++ {
		for i := range X {
			means[j] += X[i][j]
		}
		means[j] /= float64(len(X))
		for i := range X {
			d := X[i][j] - means[j]
			stds[j] += d * d
		}
		stds[j] = math.Sqrt(stds[j] / float64(len(X)))
		if stds[j] == 0 {
			stds[j] = 1
		}
	}
	yMean, yStd := 0.0, 0.0
	for _, v := range y {
		yMean += v
	}
	yMean /= float64(len(y))
	for _, v := range y {
		yStd += (v - yMean) * (v - yMean)
	}
	yStd = math.Sqrt(yStd / float64(len(y)))
	if yStd == 0 {
		yStd = 1
	}
	w := make([]float64, nf+1)
	lr := 0.1
	for iter := 0; iter < 100; iter++ {
		grad := make([]float64, nf+1)
		for i, row := range X {
			pred := w[0]
			for j, v := range row {
				pred += w[j+1] * (v - means[j]) / stds[j]
			}
			diff := pred - (y[i]-yMean)/yStd
			grad[0] += diff
			for j, v := range row {
				grad[j+1] += diff * (v - means[j]) / stds[j]
			}
		}
		scale := lr / float64(len(X))
		for j := range w {
			reg := 0.0
			if j > 0 {
				reg = lambda * w[j] / float64(len(X))
			}
			w[j] -= scale*grad[j] + reg
		}
	}
	packed := append(w, means...)
	packed = append(packed, stds...)
	packed = append(packed, yMean, yStd)
	return packed
}

func ridgePredict(packed, row []float64) float64 {
	if packed == nil {
		return 0
	}
	nf := len(row)
	w := packed[:nf+1]
	means := packed[nf+1 : 2*nf+1]
	stds := packed[2*nf+1 : 3*nf+1]
	yMean, yStd := packed[3*nf+1], packed[3*nf+2]
	pred := w[0]
	for j, v := range row {
		pred += w[j+1] * (v - means[j]) / stds[j]
	}
	return pred*yStd + yMean
}
