package cleaning

import (
	"math"
	"math/rand"
	"testing"

	"kglids/internal/dataframe"
	"kglids/internal/embed"
	"kglids/internal/profiler"
)

func frameWithNulls() *dataframe.DataFrame {
	df := dataframe.New("t")
	age := &dataframe.Series{Name: "age"}
	for _, v := range []string{"10", "", "30", "40", ""} {
		age.Cells = append(age.Cells, dataframe.ParseCell(v))
	}
	city := &dataframe.Series{Name: "city"}
	for _, v := range []string{"a", "b", "", "a", "a"} {
		city.Cells = append(city.Cells, dataframe.ParseCell(v))
	}
	df.AddColumn(age)
	df.AddColumn(city)
	return df
}

func TestFillNA(t *testing.T) {
	df := frameWithNulls()
	out := FillNA(df)
	if out.NullCount() != 0 {
		t.Fatalf("nulls remain: %d", out.NullCount())
	}
	// Mean of 10,30,40 ≈ 26.667.
	got := out.Column("age").Cells[1].F
	if math.Abs(got-80.0/3) > 1e-9 {
		t.Errorf("mean fill = %v", got)
	}
	if out.Column("city").Cells[2].S != "a" {
		t.Errorf("mode fill = %q", out.Column("city").Cells[2].S)
	}
	// Original untouched.
	if df.NullCount() != 3 {
		t.Error("input mutated")
	}
}

func TestInterpolate(t *testing.T) {
	df := frameWithNulls()
	out := Interpolate(df)
	if out.Column("age").NullCount() != 0 {
		t.Fatal("nulls remain")
	}
	// Between 10 and 30 → 20; trailing null extends 40.
	if got := out.Column("age").Cells[1].F; got != 20 {
		t.Errorf("interpolated = %v, want 20", got)
	}
	if got := out.Column("age").Cells[4].F; got != 40 {
		t.Errorf("extended = %v, want 40", got)
	}
}

func TestSimpleImputeStrategies(t *testing.T) {
	df := frameWithNulls()
	if got := SimpleImpute(df, "median").Column("age").Cells[1].F; got != 30 {
		t.Errorf("median fill = %v", got)
	}
	if got := SimpleImpute(df, "mean").Column("age").Cells[1].F; math.Abs(got-80.0/3) > 1e-9 {
		t.Errorf("mean fill = %v", got)
	}
	if got := SimpleImpute(df, "most_frequent").Column("age").Cells[1].F; got != 10 {
		// All values distinct; deterministic tie-break picks smallest
		// lexical "10".
		t.Errorf("mode fill = %v", got)
	}
}

func TestKNNImpute(t *testing.T) {
	// Two correlated columns: missing b should take the mean of its
	// nearest rows by a-distance.
	df := dataframe.New("t")
	a := &dataframe.Series{Name: "a"}
	b := &dataframe.Series{Name: "b"}
	for _, v := range []float64{1, 2, 3, 100, 101} {
		a.Cells = append(a.Cells, dataframe.NumberCell(v))
	}
	for _, v := range []string{"10", "20", "", "1000", "1010"} {
		b.Cells = append(b.Cells, dataframe.ParseCell(v))
	}
	df.AddColumn(a)
	df.AddColumn(b)
	out := KNNImpute(df, 2)
	got := out.Column("b").Cells[2].F
	if got != 15 { // mean of the two nearest rows (a=1,2 → b=10,20)
		t.Errorf("knn fill = %v, want 15", got)
	}
}

func TestIterativeImpute(t *testing.T) {
	// b = 2a exactly; iterative imputation should recover it well.
	rng := rand.New(rand.NewSource(1))
	df := dataframe.New("t")
	a := &dataframe.Series{Name: "a"}
	b := &dataframe.Series{Name: "b"}
	for i := 0; i < 60; i++ {
		v := rng.Float64() * 10
		a.Cells = append(a.Cells, dataframe.NumberCell(v))
		if i%10 == 3 {
			b.Cells = append(b.Cells, dataframe.NullCell())
		} else {
			b.Cells = append(b.Cells, dataframe.NumberCell(2*v))
		}
	}
	df.AddColumn(a)
	df.AddColumn(b)
	out := IterativeImpute(df, 5)
	if out.NullCount() != 0 {
		t.Fatal("nulls remain")
	}
	// Check imputed values approximate 2a.
	for i := 0; i < 60; i++ {
		if df.Column("b").Cells[i].IsNull() {
			want := 2 * df.Column("a").Cells[i].F
			got := out.Column("b").Cells[i].F
			if math.Abs(got-want) > 2.0 {
				t.Errorf("row %d: imputed %v, want ~%v", i, got, want)
			}
		}
	}
}

func TestApplyAllOps(t *testing.T) {
	for _, op := range Ops {
		out, err := Apply(op, frameWithNulls())
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if out.NullCount() != 0 {
			t.Errorf("%s left %d nulls", op, out.NullCount())
		}
	}
	if _, err := Apply(Op("Nope"), frameWithNulls()); err == nil {
		t.Error("unknown op should error")
	}
}

func TestClassOf(t *testing.T) {
	for i, op := range Ops {
		if ClassOf(op) != i {
			t.Errorf("ClassOf(%s) = %d", op, ClassOf(op))
		}
	}
	if ClassOf("zzz") != -1 {
		t.Error("unknown class")
	}
}

func TestMissingValueEmbedding(t *testing.T) {
	p := profiler.New()
	df := frameWithNulls()
	emb := MissingValueEmbedding(p, df)
	if len(emb) != embed.TableDim {
		t.Fatalf("dim = %d", len(emb))
	}
	if emb.Norm() == 0 {
		t.Error("embedding is zero")
	}
	// Only columns with nulls contribute; a table whose only-null column
	// is numeric should differ from one whose only-null column is text.
	df2 := dataframe.New("t2")
	s := &dataframe.Series{Name: "age"}
	for _, v := range []string{"10", "", "30"} {
		s.Cells = append(s.Cells, dataframe.ParseCell(v))
	}
	full := &dataframe.Series{Name: "note"}
	for _, v := range []string{"x", "y", "z"} {
		full.Cells = append(full.Cells, dataframe.ParseCell(v))
	}
	df2.AddColumn(s)
	df2.AddColumn(full)
	emb2 := MissingValueEmbedding(p, df2)
	// String block (last 300 dims) must be zero: "note" has no nulls.
	strBlock := emb2[5*embed.Dim:]
	for _, v := range strBlock {
		if v != 0 {
			t.Error("null-free column leaked into embedding")
			break
		}
	}
}

// synthetic training set: tables whose missing numeric columns correlate
// with specific ops.
func syntheticExamples(t *testing.T, n int) []Example {
	t.Helper()
	p := profiler.New()
	rng := rand.New(rand.NewSource(5))
	var out []Example
	for i := 0; i < n; i++ {
		df := dataframe.New("t")
		s := &dataframe.Series{Name: "v"}
		op := Ops[i%len(Ops)]
		for r := 0; r < 40; r++ {
			if r%7 == 0 {
				s.Cells = append(s.Cells, dataframe.NullCell())
				continue
			}
			// Different ops see different value scales so the embedding
			// carries signal.
			scale := math.Pow(10, float64(ClassOf(op)))
			s.Cells = append(s.Cells, dataframe.NumberCell(rng.Float64()*scale))
		}
		df.AddColumn(s)
		out = append(out, Example{Embedding: MissingValueEmbedding(p, df), Op: op})
	}
	return out
}

func TestRecommenderLearnsAssociation(t *testing.T) {
	examples := syntheticExamples(t, 100)
	rec := Train(examples)
	// Evaluate on the training distribution.
	correct := 0
	p := profiler.New()
	_ = p
	for _, ex := range examples[:25] {
		probs := rec.model.PredictVector(ex.Embedding)
		if Ops[argmax(probs)] == ex.Op {
			correct++
		}
	}
	if correct < 15 {
		t.Errorf("recommender recovered %d/25 training ops", correct)
	}
}

func argmax(p []float64) int {
	best := 0
	for i := range p {
		if p[i] > p[best] {
			best = i
		}
	}
	return best
}

func TestRecommendAndClean(t *testing.T) {
	rec := Train(syntheticExamples(t, 50))
	df := frameWithNulls()
	recs := rec.Recommend(df)
	if len(recs) != len(Ops) {
		t.Fatalf("recommendations = %d", len(recs))
	}
	// Scores sorted and sum to ~1.
	sum := 0.0
	for i, r := range recs {
		sum += r.Score
		if i > 0 && r.Score > recs[i-1].Score {
			t.Error("recommendations not sorted")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("scores sum = %v", sum)
	}
	cleaned, op, err := rec.Clean(df)
	if err != nil {
		t.Fatal(err)
	}
	if cleaned.NullCount() != 0 {
		t.Errorf("Clean with %s left nulls", op)
	}
}
