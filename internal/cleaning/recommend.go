package cleaning

import (
	"sort"

	"kglids/internal/dataframe"
	"kglids/internal/embed"
	"kglids/internal/gnn"
	"kglids/internal/profiler"
)

// Example is one GNN training sample mined from the LiDS graph: the
// 1800-dimensional embedding of a table with missing values (Section 4.2:
// per-type averaged column embeddings of the columns containing nulls,
// concatenated) and the cleaning operation its pipeline applied.
type Example struct {
	Embedding embed.Vector
	Op        Op
}

// Recommender is the on-demand cleaning model: a 1-layer GNN over
// table-embedding nodes linked to operation nodes.
type Recommender struct {
	model    *gnn.Model
	profiler *profiler.Profiler
}

// MissingValueEmbedding computes the GNN input for a frame: the per-type
// averaged CoLR embeddings of the columns that contain missing values,
// concatenated into 1800 dimensions. When no column has nulls, all columns
// contribute (so inference still works pre-emptively).
func MissingValueEmbedding(p *profiler.Profiler, df *dataframe.DataFrame) embed.Vector {
	byType := map[embed.Type][]embed.Vector{}
	anyMissing := false
	for i := 0; i < df.NumCols(); i++ {
		if df.ColumnAt(i).NullCount() > 0 {
			anyMissing = true
			break
		}
	}
	for i := 0; i < df.NumCols(); i++ {
		col := df.ColumnAt(i)
		if anyMissing && col.NullCount() == 0 {
			continue
		}
		cp := p.ProfileColumn(df.Name, df.Name, col)
		byType[cp.Type] = append(byType[cp.Type], cp.Embed)
	}
	return embed.TableEmbedding(byType)
}

// Train fits the recommender on examples (the offline phase over the KG of
// 1000 datasets / 13.8k pipelines in the paper).
func Train(examples []Example) *Recommender {
	// Graph shape per Section 4.2: one edge between each table node and
	// its cleaning-operation node, one layer.
	g := gnn.NewGraph(len(examples)+len(Ops), embed.TableDim)
	for i, ex := range examples {
		copy(g.Features[i], ex.Embedding)
		g.Labels[i] = ClassOf(ex.Op)
		opNode := len(examples) + ClassOf(ex.Op)
		g.AddEdge(i, opNode)
	}
	cfg := gnn.DefaultConfig(embed.TableDim, len(Ops))
	m := gnn.NewModel(cfg)
	m.Train(g)
	return &Recommender{model: m, profiler: profiler.New()}
}

// Recommendation pairs an operation with the model's confidence.
type Recommendation struct {
	Op    Op
	Score float64
}

// Recommend returns cleaning operations for df ranked by model confidence
// (the recommend_cleaning_operations API).
func (r *Recommender) Recommend(df *dataframe.DataFrame) []Recommendation {
	emb := MissingValueEmbedding(r.profiler, df)
	probs := r.model.PredictVector(emb)
	out := make([]Recommendation, len(Ops))
	for i, op := range Ops {
		out[i] = Recommendation{Op: op, Score: probs[i]}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// Clean recommends and applies the top operation in one step.
func (r *Recommender) Clean(df *dataframe.DataFrame) (*dataframe.DataFrame, Op, error) {
	recs := r.Recommend(df)
	cleaned, err := Apply(recs[0].Op, df)
	return cleaned, recs[0].Op, err
}
