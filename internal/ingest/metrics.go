package ingest

import "kglids/internal/obs"

// Job-manager metrics, registered once into the process-wide registry.
// Queue depth and worker busyness are maintained incrementally at the
// enqueue/run transitions (no lock beyond what the transitions already
// hold); job counters are labeled by kind and outcome so dashboards can
// separate add failures from remove failures.
var (
	mQueueDepth = obs.Default.NewGauge("kglids_ingest_queue_depth",
		"Jobs accepted but not yet picked up by a worker.")
	mWorkersBusy = obs.Default.NewGauge("kglids_ingest_workers_busy",
		"Workers currently running a job.")
	mJobs = obs.Default.NewCounterVec("kglids_ingest_jobs_total",
		"Finished ingestion jobs by kind (add, remove) and outcome (done, failed).",
		"kind", "outcome")
	mJobSeconds = obs.Default.NewHistogramVec("kglids_ingest_job_seconds",
		"Job duration from worker pickup to terminal state, by kind and outcome.",
		obs.DefaultLatencyBuckets, "kind", "outcome")
	mTablesIngested = obs.Default.NewCounterVec("kglids_ingest_tables_total",
		"Tables processed by add jobs, by result: added, updated, or skipped (unchanged fingerprint).",
		"result")
)
