// Package ingest is the live-ingestion subsystem of the KGLiDS
// reproduction: an asynchronous manager that mutates a serving platform
// without a re-bootstrap. Submissions become jobs in a bounded queue; a
// bounded worker pool drains them through the platform's incremental
// mutation path (core.Platform.AddTables / RemoveTable), and every job
// exposes its lifecycle — queued, running, done, failed — for polling.
//
// Per-table content fingerprints make resubmission idempotent: a table
// whose fingerprint matches what the manager last ingested is skipped
// without touching the platform, so upstream services can re-send whole
// datasets and only pay for what actually changed.
//
// The correctness bar (verified by the equivalence tests at the repo
// root): after any sequence of add/update/remove jobs, discovery results
// and a saved snapshot are equivalent to a fresh Bootstrap over the final
// table set.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"kglids/internal/connector"
	"kglids/internal/core"
	"kglids/internal/dataframe"
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle: Queued → Running → Done | Failed.
const (
	Queued  State = "queued"
	Running State = "running"
	Done    State = "done"
	Failed  State = "failed"
)

// Kind distinguishes the mutation job types.
type Kind string

// Job kinds.
const (
	KindAdd    Kind = "add"
	KindRemove Kind = "remove"
	// KindSource jobs stream one table from a connector source (see
	// SubmitSource); the table never materializes in memory.
	KindSource Kind = "source"
)

// Job is the externally visible record of one submission. All fields are
// snapshots; Manager.Job/Jobs/Wait return copies that do not change under
// the caller.
type Job struct {
	ID    int    `json:"id"`
	Kind  Kind   `json:"kind"`
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	// Tables are the "dataset/table" IDs the job was submitted with.
	Tables []string `json:"tables"`
	// Added, Updated, and Skipped partition an add job's tables by outcome:
	// newly ingested, re-ingested with changed content, or skipped because
	// the content fingerprint was unchanged. Removed lists the IDs a remove
	// job deleted.
	Added   []string `json:"added,omitempty"`
	Updated []string `json:"updated,omitempty"`
	Skipped []string `json:"skipped,omitempty"`
	Removed []string `json:"removed,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`
}

// job is the internal record: the public snapshot plus the payload and a
// completion signal.
type job struct {
	Job
	tables []core.Table // payload of add jobs
	// src and ref are the payload of source jobs: the opened connector
	// and the one table this job streams.
	src  connector.Source
	ref  connector.TableRef
	done chan struct{}
}

// Errors returned by Submit/SubmitRemoval.
var (
	// ErrClosed marks submissions after Close.
	ErrClosed = errors.New("ingest: manager closed")
	// ErrQueueFull marks submissions rejected by the bounded queue;
	// callers should back off and retry.
	ErrQueueFull = errors.New("ingest: job queue full")
)

// Options configures a Manager.
type Options struct {
	// Workers bounds the worker pool (default 2). Workers profile
	// concurrently; the final splice into the platform is serialized by the
	// platform itself, so more workers help exactly while profiling
	// dominates job cost.
	Workers int
	// QueueSize bounds the number of jobs waiting to run (default 64).
	// Submissions beyond it fail fast with ErrQueueFull.
	QueueSize int
}

// Manager accepts table submissions and applies them to a live platform
// asynchronously. Create with New, stop with Close.
type Manager struct {
	plat *core.Platform

	mu           sync.Mutex
	jobs         map[int]*job
	order        []int
	nextID       int
	closed       bool
	fingerprints map[string]uint64 // table ID -> last ingested content hash

	queue chan *job
	wg    sync.WaitGroup
}

// New starts a manager (and its worker pool) over a platform.
func New(plat *core.Platform, opts Options) *Manager {
	workers := opts.Workers
	if workers <= 0 {
		workers = 2
	}
	queueSize := opts.QueueSize
	if queueSize <= 0 {
		queueSize = 64
	}
	m := &Manager{
		plat:         plat,
		jobs:         map[int]*job{},
		nextID:       1,
		fingerprints: map[string]uint64{},
		queue:        make(chan *job, queueSize),
	}
	for w := 0; w < workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Submit enqueues an add/update job for the given tables and returns its
// job ID. Validation failures, a full queue, and a closed manager are
// reported synchronously; everything else is reported through the job.
func (m *Manager) Submit(tables []core.Table) (int, error) {
	if len(tables) == 0 {
		return 0, errors.New("ingest: no tables in submission")
	}
	ids := make([]string, len(tables))
	for i, t := range tables {
		if t.Frame == nil || t.Dataset == "" || t.Frame.Name == "" {
			return 0, fmt.Errorf("ingest: table %d needs a dataset, a name, and a frame", i)
		}
		ids[i] = t.Dataset + "/" + t.Frame.Name
	}
	return m.enqueue(&job{
		Job:    Job{Kind: KindAdd, Tables: ids},
		tables: tables,
	})
}

// SubmitSource opens a connector URI, enumerates its tables, and
// enqueues one streaming job per table — per-table granularity means a
// lake-sized source ingests at full worker parallelism, each worker's
// memory bounded by one table's chunk and reservoir state, and a single
// broken table fails alone instead of failing the source. Tables whose
// connector-reported fingerprint matches the last ingested version are
// skipped without being opened. Open and enumeration errors are
// synchronous; per-table errors surface on the jobs. Returns the job ID
// per table, in enumeration order.
func (m *Manager) SubmitSource(uri string) ([]int, error) {
	if uri == "" {
		return nil, errors.New("ingest: empty source URI")
	}
	src, err := m.plat.OpenSource(uri)
	if err != nil {
		return nil, err
	}
	refs, err := src.Tables(context.Background())
	if err != nil {
		return nil, err
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("ingest: source %s has no tables", uri)
	}
	ids := make([]int, 0, len(refs))
	for _, ref := range refs {
		id, err := m.enqueue(&job{
			Job: Job{Kind: KindSource, Tables: []string{ref.ID()}},
			src: src,
			ref: ref,
		})
		if err != nil {
			return ids, fmt.Errorf("ingest: source %s: table %s: %w", uri, ref.ID(), err)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// SubmitRemoval enqueues a job deleting a table by "dataset/table" ID.
func (m *Manager) SubmitRemoval(tableID string) (int, error) {
	if tableID == "" {
		return 0, errors.New("ingest: empty table ID")
	}
	return m.enqueue(&job{Job: Job{Kind: KindRemove, Tables: []string{tableID}}})
}

func (m *Manager) enqueue(j *job) (int, error) {
	j.State = Queued
	j.SubmittedAt = time.Now()
	j.done = make(chan struct{})
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return 0, ErrClosed
	}
	j.ID = m.nextID
	select {
	case m.queue <- j:
		m.nextID++
		m.jobs[j.ID] = j
		m.order = append(m.order, j.ID)
		m.pruneLocked()
		m.mu.Unlock()
		mQueueDepth.Inc()
		return j.ID, nil
	default:
		m.mu.Unlock()
		return 0, fmt.Errorf("%w (%d waiting)", ErrQueueFull, cap(m.queue))
	}
}

// maxRetainedJobs bounds the job history a long-lived manager keeps: once
// exceeded, the oldest terminal (done/failed) records are dropped. Queued
// and running jobs are always retained.
const maxRetainedJobs = 1024

// pruneLocked evicts the oldest finished job records beyond the retention
// cap; caller holds m.mu.
func (m *Manager) pruneLocked() {
	excess := len(m.order) - maxRetainedJobs
	if excess <= 0 {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		j := m.jobs[id]
		if excess > 0 && (j.State == Done || j.State == Failed) {
			delete(m.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.run(j)
	}
}

func (m *Manager) run(j *job) {
	mQueueDepth.Dec()
	mWorkersBusy.Inc()
	m.mu.Lock()
	j.State = Running
	j.StartedAt = time.Now()
	m.mu.Unlock()

	var err error
	switch j.Kind {
	case KindAdd:
		err = m.runAdd(j)
	case KindRemove:
		err = m.runRemove(j)
	case KindSource:
		err = m.runSource(j)
	default:
		err = fmt.Errorf("ingest: unknown job kind %q", j.Kind)
	}

	m.mu.Lock()
	j.FinishedAt = time.Now()
	if err != nil {
		j.State = Failed
		j.Error = err.Error()
	} else {
		j.State = Done
	}
	outcome := string(j.State)
	dur := j.FinishedAt.Sub(j.StartedAt)
	kind := string(j.Kind)
	nAdded, nUpdated, nSkipped := len(j.Added), len(j.Updated), len(j.Skipped)
	m.mu.Unlock()
	mWorkersBusy.Dec()
	mJobs.WithLabelValues(kind, outcome).Inc()
	mJobSeconds.WithLabelValues(kind, outcome).Observe(dur.Seconds())
	if nAdded > 0 {
		mTablesIngested.WithLabelValues("added").Add(uint64(nAdded))
	}
	if nUpdated > 0 {
		mTablesIngested.WithLabelValues("updated").Add(uint64(nUpdated))
	}
	if nSkipped > 0 {
		mTablesIngested.WithLabelValues("skipped").Add(uint64(nSkipped))
	}
	close(j.done)
}

// runAdd partitions the submission by fingerprint, ingests what changed,
// and records the new fingerprints on success.
func (m *Manager) runAdd(j *job) error {
	// Hash outside the manager lock: fingerprints depend only on the job
	// payload, and hashing a large submission must not block status reads
	// or other workers' state transitions.
	hashes := make([]uint64, len(j.tables))
	for i, t := range j.tables {
		hashes[i] = Fingerprint(t)
	}
	var ingest []core.Table
	var ingestIDs []string
	prints := map[string]uint64{}
	m.mu.Lock()
	for i, t := range j.tables {
		id := j.Tables[i]
		if prev, ok := m.fingerprints[id]; ok && prev == hashes[i] && m.plat.HasTable(id) {
			j.Skipped = append(j.Skipped, id)
			continue
		}
		prints[id] = hashes[i]
		ingest = append(ingest, t)
		ingestIDs = append(ingestIDs, id)
	}
	m.mu.Unlock()
	if len(ingest) == 0 {
		return nil
	}

	updated := map[string]bool{}
	for _, id := range ingestIDs {
		if m.plat.HasTable(id) {
			updated[id] = true
		}
	}
	if _, err := m.plat.AddTables(ingest); err != nil {
		return err
	}
	m.mu.Lock()
	for _, id := range ingestIDs {
		m.fingerprints[id] = prints[id]
		if updated[id] {
			j.Updated = append(j.Updated, id)
		} else {
			j.Added = append(j.Added, id)
		}
	}
	m.mu.Unlock()
	// Drop the payload: finished jobs should not pin table frames in
	// memory for as long as the job record is retained.
	j.tables = nil
	return nil
}

// runSource streams one connector table into the platform, skipping it
// when the connector-reported fingerprint matches the last ingested
// version. A zero fingerprint means the connector cannot cheaply hash
// the table; such tables are always re-ingested, never stale-skipped.
func (m *Manager) runSource(j *job) error {
	id := j.ref.ID()
	m.mu.Lock()
	prev, known := m.fingerprints[id]
	m.mu.Unlock()
	if known && j.ref.Fingerprint != 0 && prev == j.ref.Fingerprint && m.plat.HasTable(id) {
		m.mu.Lock()
		j.Skipped = append(j.Skipped, id)
		m.mu.Unlock()
		return nil
	}

	updated := m.plat.HasTable(id)
	if err := m.plat.AddSourceTable(context.Background(), j.src, j.ref); err != nil {
		return err
	}
	m.mu.Lock()
	m.fingerprints[id] = j.ref.Fingerprint
	if updated {
		j.Updated = append(j.Updated, id)
	} else {
		j.Added = append(j.Added, id)
	}
	m.mu.Unlock()
	j.src = nil
	return nil
}

func (m *Manager) runRemove(j *job) error {
	id := j.Tables[0]
	if err := m.plat.RemoveTable(id); err != nil {
		return err
	}
	m.mu.Lock()
	delete(m.fingerprints, id)
	j.Removed = append(j.Removed, id)
	m.mu.Unlock()
	return nil
}

// Job returns a snapshot of one job by ID.
func (m *Manager) Job(id int) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, false
	}
	return m.snapshotLocked(j), true
}

// Jobs returns snapshots of all retained jobs in submission order (the
// oldest finished records are evicted beyond maxRetainedJobs).
func (m *Manager) Jobs() []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.snapshotLocked(m.jobs[id]))
	}
	return out
}

// snapshotLocked deep-copies the public record; caller holds m.mu.
func (m *Manager) snapshotLocked(j *job) Job {
	c := j.Job
	c.Tables = append([]string(nil), j.Tables...)
	c.Added = append([]string(nil), j.Added...)
	c.Updated = append([]string(nil), j.Updated...)
	c.Skipped = append([]string(nil), j.Skipped...)
	c.Removed = append([]string(nil), j.Removed...)
	return c
}

// Wait blocks until the job reaches a terminal state (Done or Failed) and
// returns its final snapshot. Unknown IDs return ok == false immediately.
func (m *Manager) Wait(id int) (Job, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Job{}, false
	}
	<-j.done
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snapshotLocked(j), true
}

// Drain waits for every job submitted so far to finish.
func (m *Manager) Drain() {
	m.mu.Lock()
	ids := append([]int(nil), m.order...)
	m.mu.Unlock()
	for _, id := range ids {
		m.Wait(id)
	}
}

// Close stops accepting submissions, waits for queued jobs to finish, and
// releases the workers. Safe to call more than once.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	close(m.queue)
	m.mu.Unlock()
	m.wg.Wait()
}

// SeedFingerprints registers fingerprints for tables already in the
// platform (e.g. the bootstrap lake), so resubmitting them unchanged is
// skipped rather than re-ingested.
func (m *Manager) SeedFingerprints(tables []core.Table) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, t := range tables {
		if t.Frame == nil {
			continue
		}
		m.fingerprints[t.Dataset+"/"+t.Frame.Name] = Fingerprint(t)
	}
}

// Fingerprint hashes a table's full content — dataset, name, column names,
// and every cell's kind and value — with FNV-1a. Identical content always
// hashes identically, so an unchanged resubmission is detected without
// profiling anything.
func Fingerprint(t core.Table) uint64 {
	h := fnv.New64a()
	writeStr := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	writeStr(t.Dataset)
	if t.Frame == nil {
		return h.Sum64()
	}
	writeStr(t.Frame.Name)
	for i := 0; i < t.Frame.NumCols(); i++ {
		s := t.Frame.ColumnAt(i)
		writeStr(s.Name)
		for _, c := range s.Cells {
			h.Write([]byte{byte(c.Kind)})
			switch c.Kind {
			case dataframe.Number, dataframe.Boolean:
				var buf [8]byte
				bits := math.Float64bits(c.F)
				for b := 0; b < 8; b++ {
					buf[b] = byte(bits >> (8 * b))
				}
				h.Write(buf[:])
			default:
				writeStr(c.S)
			}
		}
	}
	return h.Sum64()
}

// Stats summarizes the manager for monitoring.
type Stats struct {
	Queued  int `json:"queued"`
	Running int `json:"running"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
	Tracked int `json:"tracked_tables"`
}

// Stats counts jobs by state and fingerprinted tables.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s Stats
	for _, j := range m.jobs {
		switch j.State {
		case Queued:
			s.Queued++
		case Running:
			s.Running++
		case Done:
			s.Done++
		case Failed:
			s.Failed++
		}
	}
	s.Tracked = len(m.fingerprints)
	return s
}
