package ingest

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"kglids/internal/core"
)

// writeDirLake materializes a small dir:// lake and returns its root.
func writeDirLake(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"sales/orders.csv": "id,amount\n1,10.5\n2,20.25\n3,30.75\n",
		"sales/items.csv":  "sku,qty\nA1,3\nB2,7\nC3,9\n",
		"hr/people.csv":    "name,age\nJames,31\nMary,45\nJohn,28\n",
	}
	for name, content := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func waitAll(t *testing.T, m *Manager, ids []int) []Job {
	t.Helper()
	out := make([]Job, 0, len(ids))
	for _, id := range ids {
		j, ok := m.Wait(id)
		if !ok {
			t.Fatalf("job %d vanished", id)
		}
		if j.State != Done {
			t.Fatalf("job %d = %+v", id, j)
		}
		out = append(out, j)
	}
	return out
}

func TestSubmitSourceStreamsAndFingerprintSkips(t *testing.T) {
	root := writeDirLake(t)
	uri := "dir://" + root
	plat, failed, err := core.BootstrapSource(context.Background(), core.DefaultConfig(), uri)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 {
		t.Fatalf("failed: %v", failed)
	}
	m := New(plat, Options{Workers: 2})
	defer m.Close()

	// First submission: the manager has no fingerprints, so every table
	// re-ingests as an update of the bootstrapped version.
	ids, err := m.SubmitSource(uri)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("enqueued %d jobs, want one per table", len(ids))
	}
	for _, j := range waitAll(t, m, ids) {
		if len(j.Updated) != 1 || len(j.Skipped) != 0 {
			t.Fatalf("first pass job = %+v", j)
		}
	}

	// Second submission: connector fingerprints match — every table skips
	// without being opened.
	ids, err = m.SubmitSource(uri)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range waitAll(t, m, ids) {
		if len(j.Skipped) != 1 || len(j.Updated) != 0 || len(j.Added) != 0 {
			t.Fatalf("unchanged resubmission job = %+v", j)
		}
	}

	// Change one file and add a brand-new one: exactly those two do work.
	if err := os.WriteFile(filepath.Join(root, "sales", "orders.csv"),
		[]byte("id,amount\n1,11\n2,22\n3,33\n4,44\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "hr", "roles.csv"),
		[]byte("role,level\neng,3\nmgr,5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ids, err = m.SubmitSource(uri)
	if err != nil {
		t.Fatal(err)
	}
	var updated, added, skipped int
	for _, j := range waitAll(t, m, ids) {
		updated += len(j.Updated)
		added += len(j.Added)
		skipped += len(j.Skipped)
	}
	if updated != 1 || added != 1 || skipped != 2 {
		t.Fatalf("updated=%d added=%d skipped=%d, want 1/1/2", updated, added, skipped)
	}
	if !plat.HasTable("hr/roles.csv") {
		t.Fatal("new table not served")
	}
}

func TestSubmitSourceValidation(t *testing.T) {
	plat := core.Bootstrap(core.DefaultConfig(), lakeTables(t)[:2])
	m := New(plat, Options{Workers: 1})
	defer m.Close()
	if _, err := m.SubmitSource(""); err == nil {
		t.Error("empty URI accepted")
	}
	if _, err := m.SubmitSource("nosuch://x"); err == nil {
		t.Error("unknown scheme accepted")
	}
	empty := t.TempDir()
	if _, err := m.SubmitSource("dir://" + empty); err == nil {
		t.Error("empty lake accepted")
	}
}
