package ingest

import (
	"strings"
	"sync"
	"testing"

	"kglids/internal/core"
	"kglids/internal/lakegen"
	"kglids/internal/rdf"
)

var testSpec = lakegen.Spec{
	Name: "ingest", Families: 3, TablesPerFamily: 3, NoiseTables: 3,
	RowsPerTable: 40, QueryTables: 3, Seed: 7,
}

func lakeTables(t testing.TB) []core.Table {
	t.Helper()
	b := lakegen.Generate(testSpec)
	var tables []core.Table
	for _, df := range b.Tables {
		tables = append(tables, core.Table{Dataset: b.Dataset[df.Name], Frame: df})
	}
	return tables
}

func id(t core.Table) string { return t.Dataset + "/" + t.Frame.Name }

func TestJobLifecycleAddRemove(t *testing.T) {
	tables := lakeTables(t)
	plat := core.Bootstrap(core.DefaultConfig(), tables[:4])
	m := New(plat, Options{Workers: 2})
	defer m.Close()

	jobID, err := m.Submit(tables[4:6])
	if err != nil {
		t.Fatal(err)
	}
	j, ok := m.Wait(jobID)
	if !ok || j.State != Done {
		t.Fatalf("job = %+v", j)
	}
	if len(j.Added) != 2 || len(j.Skipped) != 0 {
		t.Fatalf("added %v skipped %v", j.Added, j.Skipped)
	}
	for _, tb := range tables[4:6] {
		if !plat.HasTable(id(tb)) {
			t.Errorf("%s not ingested", id(tb))
		}
	}

	rmID, err := m.SubmitRemoval(id(tables[4]))
	if err != nil {
		t.Fatal(err)
	}
	if j, _ = m.Wait(rmID); j.State != Done || len(j.Removed) != 1 {
		t.Fatalf("remove job = %+v", j)
	}
	if plat.HasTable(id(tables[4])) {
		t.Error("table still present after remove job")
	}
}

func TestUnchangedResubmissionSkipped(t *testing.T) {
	tables := lakeTables(t)
	plat := core.Bootstrap(core.DefaultConfig(), tables[:4])
	m := New(plat, Options{Workers: 1})
	defer m.Close()

	first, _ := m.Submit(tables[4:5])
	if j, _ := m.Wait(first); len(j.Added) != 1 {
		t.Fatalf("first submission: %+v", j)
	}
	statsBefore := plat.Stats()

	second, _ := m.Submit(tables[4:5])
	j, _ := m.Wait(second)
	if len(j.Skipped) != 1 || len(j.Added) != 0 || len(j.Updated) != 0 {
		t.Fatalf("resubmission not skipped: %+v", j)
	}
	if got := plat.Stats(); got != statsBefore {
		t.Errorf("skipped job mutated the platform: %+v vs %+v", got, statsBefore)
	}

	// Changed content must be re-ingested as an update.
	mod := core.Table{Dataset: tables[4].Dataset, Frame: tables[4].Frame.Head(10)}
	third, _ := m.Submit([]core.Table{mod})
	if j, _ = m.Wait(third); len(j.Updated) != 1 {
		t.Fatalf("changed resubmission not an update: %+v", j)
	}
}

func TestSeedFingerprints(t *testing.T) {
	tables := lakeTables(t)
	plat := core.Bootstrap(core.DefaultConfig(), tables)
	m := New(plat, Options{})
	defer m.Close()
	m.SeedFingerprints(tables)

	jobID, _ := m.Submit(tables[:3])
	j, _ := m.Wait(jobID)
	if len(j.Skipped) != 3 {
		t.Fatalf("seeded tables not skipped: %+v", j)
	}
}

func TestFailedJobReportsError(t *testing.T) {
	tables := lakeTables(t)
	plat := core.Bootstrap(core.DefaultConfig(), tables[:2])
	m := New(plat, Options{})
	defer m.Close()

	jobID, err := m.SubmitRemoval("nope/none.csv")
	if err != nil {
		t.Fatal(err)
	}
	j, _ := m.Wait(jobID)
	if j.State != Failed || j.Error == "" {
		t.Fatalf("job = %+v, want failed with error", j)
	}
}

func TestSubmitValidationAndClose(t *testing.T) {
	tables := lakeTables(t)
	plat := core.Bootstrap(core.DefaultConfig(), tables[:2])
	m := New(plat, Options{})
	if _, err := m.Submit(nil); err == nil {
		t.Error("empty submission should error")
	}
	if _, err := m.Submit([]core.Table{{Dataset: "d"}}); err == nil {
		t.Error("nil frame should error")
	}
	m.Close()
	if _, err := m.Submit(tables[:1]); err != ErrClosed {
		t.Errorf("submit after close = %v, want ErrClosed", err)
	}
	m.Close() // idempotent
}

func TestQueueFull(t *testing.T) {
	tables := lakeTables(t)
	plat := core.Bootstrap(core.DefaultConfig(), tables[:2])
	// One worker, queue of one: the worker picks up the first job quickly,
	// so saturate with enough submissions that at least one must fail.
	m := New(plat, Options{Workers: 1, QueueSize: 1})
	defer m.Close()
	var fullSeen bool
	for i := 0; i < 64 && !fullSeen; i++ {
		_, err := m.Submit(tables[2:3])
		if err != nil {
			if !strings.Contains(err.Error(), "queue full") {
				t.Fatalf("unexpected error: %v", err)
			}
			fullSeen = true
		}
	}
	if !fullSeen {
		t.Skip("queue never filled on this machine (workers too fast)")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	tables := lakeTables(t)
	a := tables[0]
	if Fingerprint(a) != Fingerprint(a) {
		t.Error("fingerprint not deterministic")
	}
	b := core.Table{Dataset: a.Dataset, Frame: a.Frame.Head(a.Frame.NumRows() - 1)}
	if Fingerprint(a) == Fingerprint(b) {
		t.Error("row change not detected")
	}
	c := core.Table{Dataset: a.Dataset + "x", Frame: a.Frame}
	if Fingerprint(a) == Fingerprint(c) {
		t.Error("dataset change not detected")
	}
}

// TestConcurrentIngestWhileQuerying hammers discovery (similarity search +
// SPARQL) while jobs add and remove tables. Run under -race (as CI does)
// this is the regression gate for the platform's concurrency story: no
// data race, no panic, and discovery always sees a consistent store.
func TestConcurrentIngestWhileQuerying(t *testing.T) {
	tables := lakeTables(t)
	n := len(tables)
	plat := core.Bootstrap(core.DefaultConfig(), tables[:n-3])
	m := New(plat, Options{Workers: 2})
	defer m.Close()

	queryFrame := tables[0].Frame
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Readers: embedding similarity, ANN search, SPARQL, stats.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch r % 4 {
				case 0:
					plat.SimilarTablesByEmbedding(queryFrame, 5)
				case 1:
					plat.ApproxSimilarTables(queryFrame, 5)
				case 2:
					if _, err := plat.Query(`SELECT ?t WHERE { ?t a kglids:Table . }`); err != nil {
						t.Error(err)
						return
					}
				case 3:
					plat.Stats()
					plat.Discovery.UnionableTables(rdf.IRI("x"), 3)
				}
			}
		}(r)
	}

	// Writers: cycle the three held-out tables in and out through jobs.
	for cycle := 0; cycle < 3; cycle++ {
		var ids []int
		for _, tb := range tables[n-3:] {
			jid, err := m.Submit([]core.Table{tb})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, jid)
		}
		for _, jid := range ids {
			if j, _ := m.Wait(jid); j.State == Failed {
				t.Fatalf("add job failed: %+v", j)
			}
		}
		for _, tb := range tables[n-3:] {
			jid, err := m.SubmitRemoval(id(tb))
			if err != nil {
				t.Fatal(err)
			}
			if j, _ := m.Wait(jid); j.State == Failed {
				t.Fatalf("remove job failed: %+v", j)
			}
		}
	}
	close(stop)
	wg.Wait()

	if got, want := plat.Stats().Tables, n-3; got != want {
		t.Errorf("tables = %d after cycles, want %d", got, want)
	}
}
