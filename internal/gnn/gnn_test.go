package gnn

import (
	"math"
	"math/rand"
	"testing"
)

// clusterGraph builds a graph whose node features fall into c Gaussian
// clusters; labels follow the cluster.
func clusterGraph(n, dim, classes int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n, dim)
	for v := 0; v < n; v++ {
		c := v % classes
		for j := 0; j < dim; j++ {
			g.Features[v][j] = rng.NormFloat64() * 0.3
		}
		// Shift a class-specific block.
		base := c * (dim / classes)
		for j := base; j < base+dim/classes; j++ {
			g.Features[v][j] += 2.0
		}
		g.Labels[v] = c
	}
	return g
}

func TestTrainSeparableClusters(t *testing.T) {
	g := clusterGraph(200, 32, 4, 1)
	cfg := DefaultConfig(32, 4)
	cfg.Epochs = 80
	m := NewModel(cfg)
	loss := m.Train(g)
	if loss > 0.3 {
		t.Errorf("final loss = %v", loss)
	}
	idx := make([]int, g.NumNodes())
	for i := range idx {
		idx[i] = i
	}
	if acc := m.AccuracyOn(g, idx); acc < 0.95 {
		t.Errorf("train accuracy = %v", acc)
	}
}

func TestPredictVectorMatchesIsolatedNode(t *testing.T) {
	g := clusterGraph(100, 16, 2, 2)
	cfg := DefaultConfig(16, 2)
	m := NewModel(cfg)
	m.Train(g)
	// An isolated node's PredictNode equals PredictVector on its features.
	v := 7
	g2 := NewGraph(1, 16)
	copy(g2.Features[0], g.Features[v])
	pn := m.PredictNode(g2, 0)
	pv := m.PredictVector(g.Features[v])
	for i := range pn {
		if math.Abs(pn[i]-pv[i]) > 1e-12 {
			t.Fatal("isolated PredictNode != PredictVector")
		}
	}
}

func TestNeighborAggregationMatters(t *testing.T) {
	// Node features are uninformative; the label is carried by a feature
	// on an attached "operation" node. Only aggregation can solve this.
	rng := rand.New(rand.NewSource(3))
	const n = 120
	g := NewGraph(2*n, 8)
	for v := 0; v < n; v++ {
		label := v % 2
		for j := 0; j < 8; j++ {
			g.Features[v][j] = rng.NormFloat64() * 0.01
		}
		op := n + v
		g.Features[op][label] = 3.0
		g.AddEdge(v, op)
		g.Labels[v] = label
	}
	cfg := DefaultConfig(8, 2)
	cfg.Epochs = 150
	m := NewModel(cfg)
	m.Train(g)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if acc := m.AccuracyOn(g, idx); acc < 0.9 {
		t.Errorf("aggregation accuracy = %v; neighbour information not used", acc)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	p := softmax([]float64{1, 2, 3})
	sum := 0.0
	for _, v := range p {
		sum += v
		if v <= 0 || v >= 1 {
			t.Errorf("softmax value %v out of (0,1)", v)
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sum = %v", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Error("softmax ordering wrong")
	}
	// Large logits must not overflow.
	p = softmax([]float64{1000, 1001})
	if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
		t.Error("softmax overflow")
	}
}

func TestUnlabeledNodesIgnored(t *testing.T) {
	g := clusterGraph(50, 8, 2, 4)
	for v := 25; v < 50; v++ {
		g.Labels[v] = -1
	}
	m := NewModel(DefaultConfig(8, 2))
	if loss := m.Train(g); math.IsNaN(loss) {
		t.Error("loss is NaN with unlabeled nodes")
	}
}

func TestEmptyGraphTrain(t *testing.T) {
	g := NewGraph(0, 4)
	m := NewModel(DefaultConfig(4, 2))
	if loss := m.Train(g); loss != 0 {
		t.Errorf("empty-graph loss = %v", loss)
	}
}

func TestDeterministicTraining(t *testing.T) {
	g := clusterGraph(80, 8, 2, 5)
	m1 := NewModel(DefaultConfig(8, 2))
	m2 := NewModel(DefaultConfig(8, 2))
	l1, l2 := m1.Train(g), m2.Train(g)
	if l1 != l2 {
		t.Errorf("training not deterministic: %v vs %v", l1, l2)
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]float64{0.1, 0.7, 0.2}) != 1 {
		t.Error("argmax wrong")
	}
	if Argmax([]float64{0.9}) != 0 {
		t.Error("single-element argmax wrong")
	}
}

func TestPredictVectorDimCheck(t *testing.T) {
	m := NewModel(DefaultConfig(8, 2))
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch should panic")
		}
	}()
	m.PredictVector(make([]float64, 4))
}
