// Package gnn implements the graph neural network substrate of KGLiDS's
// on-demand automation (paper Section 4): one-layer message-passing node
// classification over subgraphs of the LiDS graph (table/column nodes
// initialized with CoLR embeddings, operation nodes as classes), trained
// with GraphSAINT-style node-sampled minibatches. The original uses
// PyTorch Geometric; this is an exact small-scale reimplementation (the
// paper's models are single-layer, Section 4.2).
package gnn

import (
	"fmt"
	"math"
	"math/rand"
)

// Graph is the training/inference graph: per-node dense features, an
// undirected adjacency list, and integer labels (-1 for unlabeled nodes).
type Graph struct {
	Features [][]float64
	Adj      [][]int
	Labels   []int
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Features) }

// AddEdge links nodes u and v in both directions.
func (g *Graph) AddEdge(u, v int) {
	g.Adj[u] = append(g.Adj[u], v)
	g.Adj[v] = append(g.Adj[v], u)
}

// NewGraph allocates a graph with n nodes of the given feature dimension.
func NewGraph(n, dim int) *Graph {
	g := &Graph{
		Features: make([][]float64, n),
		Adj:      make([][]int, n),
		Labels:   make([]int, n),
	}
	for i := range g.Features {
		g.Features[i] = make([]float64, dim)
		g.Labels[i] = -1
	}
	return g
}

// Config holds GNN hyperparameters.
type Config struct {
	InputDim  int
	HiddenDim int
	Classes   int
	LR        float64
	Epochs    int
	BatchSize int // GraphSAINT node-sample size per step
	Seed      int64
}

// DefaultConfig returns the configuration used by the cleaning and
// transformation models (1800-d input per Section 4.2).
func DefaultConfig(inputDim, classes int) Config {
	return Config{
		InputDim:  inputDim,
		HiddenDim: 64,
		Classes:   classes,
		LR:        0.05,
		Epochs:    60,
		BatchSize: 64,
		Seed:      23,
	}
}

// Model is a one-layer message-passing GNN with a softmax head:
//
//	h_v = ReLU(Wself·x_v + Wagg·mean_{u∈N(v)} x_u + b1)
//	p_v = softmax(Wout·h_v + b2)
type Model struct {
	Cfg   Config
	Wself [][]float64
	Wagg  [][]float64
	B1    []float64
	Wout  [][]float64
	B2    []float64
}

// NewModel initializes a model with Xavier-style random weights.
func NewModel(cfg Config) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	initMat := func(rows, cols int) [][]float64 {
		scale := math.Sqrt(2.0 / float64(rows+cols))
		m := make([][]float64, rows)
		for i := range m {
			m[i] = make([]float64, cols)
			for j := range m[i] {
				m[i][j] = rng.NormFloat64() * scale
			}
		}
		return m
	}
	return &Model{
		Cfg:   cfg,
		Wself: initMat(cfg.HiddenDim, cfg.InputDim),
		Wagg:  initMat(cfg.HiddenDim, cfg.InputDim),
		B1:    make([]float64, cfg.HiddenDim),
		Wout:  initMat(cfg.Classes, cfg.HiddenDim),
		B2:    make([]float64, cfg.Classes),
	}
}

// neighborMean computes the mean feature vector of a node's neighbours
// (zero vector for isolated nodes).
func neighborMean(g *Graph, v int) []float64 {
	out := make([]float64, len(g.Features[v]))
	if len(g.Adj[v]) == 0 {
		return out
	}
	for _, u := range g.Adj[v] {
		for j, x := range g.Features[u] {
			out[j] += x
		}
	}
	inv := 1.0 / float64(len(g.Adj[v]))
	for j := range out {
		out[j] *= inv
	}
	return out
}

// forward computes hidden activations and class probabilities for node v.
func (m *Model) forward(x, agg []float64) (hidden, probs []float64) {
	hidden = make([]float64, m.Cfg.HiddenDim)
	for i := 0; i < m.Cfg.HiddenDim; i++ {
		s := m.B1[i]
		wSelf, wAgg := m.Wself[i], m.Wagg[i]
		for j, xv := range x {
			s += wSelf[j] * xv
		}
		for j, av := range agg {
			s += wAgg[j] * av
		}
		if s > 0 {
			hidden[i] = s
		}
	}
	logits := make([]float64, m.Cfg.Classes)
	for c := 0; c < m.Cfg.Classes; c++ {
		s := m.B2[c]
		for i, h := range hidden {
			s += m.Wout[c][i] * h
		}
		logits[c] = s
	}
	return hidden, softmax(logits)
}

func softmax(logits []float64) []float64 {
	maxL := logits[0]
	for _, l := range logits[1:] {
		if l > maxL {
			maxL = l
		}
	}
	sum := 0.0
	out := make([]float64, len(logits))
	for i, l := range logits {
		out[i] = math.Exp(l - maxL)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Train fits the model on the labeled nodes of g with node-sampled
// minibatch SGD (the GraphSAINT training substitution) and returns the
// final average cross-entropy loss.
func (m *Model) Train(g *Graph) float64 {
	var labeled []int
	for v, l := range g.Labels {
		if l >= 0 {
			labeled = append(labeled, v)
		}
	}
	if len(labeled) == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(m.Cfg.Seed + 1))
	lastLoss := 0.0
	for epoch := 0; epoch < m.Cfg.Epochs; epoch++ {
		rng.Shuffle(len(labeled), func(i, j int) { labeled[i], labeled[j] = labeled[j], labeled[i] })
		totalLoss := 0.0
		for start := 0; start < len(labeled); start += m.Cfg.BatchSize {
			end := start + m.Cfg.BatchSize
			if end > len(labeled) {
				end = len(labeled)
			}
			batch := labeled[start:end]
			totalLoss += m.step(g, batch)
		}
		lastLoss = totalLoss / float64(len(labeled))
	}
	return lastLoss
}

// step runs one SGD step over a node batch and returns its summed loss.
func (m *Model) step(g *Graph, batch []int) float64 {
	gradWself := zeros(m.Cfg.HiddenDim, m.Cfg.InputDim)
	gradWagg := zeros(m.Cfg.HiddenDim, m.Cfg.InputDim)
	gradB1 := make([]float64, m.Cfg.HiddenDim)
	gradWout := zeros(m.Cfg.Classes, m.Cfg.HiddenDim)
	gradB2 := make([]float64, m.Cfg.Classes)
	loss := 0.0
	for _, v := range batch {
		x := g.Features[v]
		agg := neighborMean(g, v)
		hidden, probs := m.forward(x, agg)
		label := g.Labels[v]
		loss -= math.Log(probs[label] + 1e-12)
		// dL/dlogit_c = p_c - [c == label]
		dLogits := make([]float64, m.Cfg.Classes)
		copy(dLogits, probs)
		dLogits[label]--
		for c := 0; c < m.Cfg.Classes; c++ {
			gradB2[c] += dLogits[c]
			for i, h := range hidden {
				gradWout[c][i] += dLogits[c] * h
			}
		}
		// Backprop into hidden (ReLU mask).
		dHidden := make([]float64, m.Cfg.HiddenDim)
		for i := range dHidden {
			if hidden[i] <= 0 {
				continue
			}
			s := 0.0
			for c := 0; c < m.Cfg.Classes; c++ {
				s += dLogits[c] * m.Wout[c][i]
			}
			dHidden[i] = s
		}
		for i, dh := range dHidden {
			if dh == 0 {
				continue
			}
			gradB1[i] += dh
			gWs, gWa := gradWself[i], gradWagg[i]
			for j, xv := range x {
				gWs[j] += dh * xv
			}
			for j, av := range agg {
				gWa[j] += dh * av
			}
		}
	}
	scale := m.Cfg.LR / float64(len(batch))
	applyGrad(m.Wself, gradWself, scale)
	applyGrad(m.Wagg, gradWagg, scale)
	applyGrad(m.Wout, gradWout, scale)
	for i := range m.B1 {
		m.B1[i] -= scale * gradB1[i]
	}
	for i := range m.B2 {
		m.B2[i] -= scale * gradB2[i]
	}
	return loss
}

func zeros(rows, cols int) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
	}
	return m
}

func applyGrad(w, g [][]float64, scale float64) {
	for i := range w {
		wi, gi := w[i], g[i]
		for j := range wi {
			wi[j] -= scale * gi[j]
		}
	}
}

// PredictNode returns class probabilities for node v of g.
func (m *Model) PredictNode(g *Graph, v int) []float64 {
	_, probs := m.forward(g.Features[v], neighborMean(g, v))
	return probs
}

// PredictVector classifies an out-of-graph feature vector (the inference
// path of Section 4.1: an unseen dataset's embedding, no neighbours yet).
func (m *Model) PredictVector(x []float64) []float64 {
	if len(x) != m.Cfg.InputDim {
		panic(fmt.Sprintf("gnn: feature dim %d, model expects %d", len(x), m.Cfg.InputDim))
	}
	_, probs := m.forward(x, make([]float64, m.Cfg.InputDim))
	return probs
}

// Argmax returns the index of the largest probability.
func Argmax(probs []float64) int {
	best := 0
	for i, p := range probs {
		if p > probs[best] {
			best = i
		}
	}
	return best
}

// AccuracyOn evaluates node-classification accuracy over the labeled nodes
// in idx.
func (m *Model) AccuracyOn(g *Graph, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	correct := 0
	for _, v := range idx {
		if Argmax(m.PredictNode(g, v)) == g.Labels[v] {
			correct++
		}
	}
	return float64(correct) / float64(len(idx))
}
