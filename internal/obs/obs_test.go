package obs

import (
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestGoldenExposition pins the exposition format byte-for-byte: HELP
// and TYPE lines, label escaping, histogram bucket expansion, family
// and child ordering.
func TestGoldenExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_requests_total", "Total requests.")
	c.Add(42)
	g := r.NewGauge("test_in_flight", "In-flight requests.")
	g.Set(-3)
	cv := r.NewCounterVec("test_hits_total", "Hits by route.", "route", "status")
	cv.WithLabelValues(`/b"ad\pa`+"\n"+`th`, "500").Add(1)
	cv.WithLabelValues("/a", "200").Add(7)
	h := r.NewHistogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_hits_total Hits by route.
# TYPE test_hits_total counter
test_hits_total{route="/a",status="200"} 7
test_hits_total{route="/b\"ad\\pa\nth",status="500"} 1
# HELP test_in_flight In-flight requests.
# TYPE test_in_flight gauge
test_in_flight -3
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.01"} 1
test_latency_seconds_bucket{le="0.1"} 3
test_latency_seconds_bucket{le="1"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 5.105
test_latency_seconds_count 4
# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total 42
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if err := ValidateExposition(strings.NewReader(b.String())); err != nil {
		t.Errorf("golden exposition fails validation: %v", err)
	}
}

func TestHistogramBounds(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	h.Observe(1) // on-boundary lands in le="1" (cumulative semantics: v <= bound)
	h.Observe(10.0001)
	h.Observe(100)
	cum, count, sum := h.snapshot()
	if want := []uint64{1, 1, 3}; cum[0] != want[0] || cum[1] != want[1] || cum[2] != want[2] {
		t.Errorf("cumulative buckets = %v, want %v", cum, want)
	}
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
	if math.Abs(sum-111.0001) > 1e-9 {
		t.Errorf("sum = %v, want 111.0001", sum)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.NewGauge("dup_total", "")
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9leading", "has space", "dash-ed"} {
		func() {
			defer func() { recover() }()
			r.NewCounter(bad, "")
			t.Errorf("metric name %q accepted", bad)
		}()
	}
	func() {
		defer func() { recover() }()
		r.NewCounterVec("ok_total", "", "le")
		t.Error("reserved label name le accepted")
	}()
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"no TYPE":           "foo 1\n",
		"bad value":         "# TYPE foo counter\nfoo abc\n",
		"unquoted label":    "# TYPE foo counter\nfoo{a=b} 1\n",
		"bad escape":        "# TYPE foo counter\nfoo{a=\"\\q\"} 1\n",
		"shrinking buckets": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"count mismatch":    "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
		"missing inf":       "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 1\nh_count 2\n",
		"empty":             "",
	}
	for name, in := range cases {
		if err := ValidateExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: exposition accepted:\n%s", name, in)
		}
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	tr.StartSpan("x")()
	tr.AddSpan("y", time.Now(), time.Second)
	if tr.Spans() != nil || tr.Elapsed() != 0 {
		t.Error("nil trace is not a no-op")
	}
	if FromContext(context.Background()) != nil {
		t.Error("empty context yielded a trace")
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("req-1")
	ctx := WithTrace(context.Background(), tr)
	got := FromContext(ctx)
	if got != tr {
		t.Fatal("trace did not round-trip through context")
	}
	end := got.StartSpan("compile")
	end()
	got.AddSpan("execute", time.Now(), 3*time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "compile" || spans[1].Name != "execute" {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[1].Dur != 3*time.Millisecond {
		t.Errorf("AddSpan duration = %v", spans[1].Dur)
	}
}

// TestConcurrentScrape hammers every instrument type from many
// goroutines while scraping, under -race: the lock-free hot path and
// the exposition snapshotting must not tear.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h_seconds", "", DefaultLatencyBuckets)
	cv := r.NewCounterVec("cv_total", "", "k")
	hv := r.NewHistogramVec("hv_seconds", "", []float64{0.001, 0.1}, "k")
	mux := NewDebugMux(r, false, func() { g.Set(int64(c.Value() % 7)) })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			keys := []string{"a", "b", "c"}
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Add(1)
				h.Observe(float64(n%100) / 1000)
				cv.WithLabelValues(keys[n%3]).Inc()
				hv.WithLabelValues(keys[(n+i)%3]).Observe(0.01)
			}
		}(i)
	}
	for i := 0; i < 20; i++ {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != 200 {
			t.Fatalf("scrape %d: status %d", i, rec.Code)
		}
		if err := ValidateExposition(strings.NewReader(rec.Body.String())); err != nil {
			t.Fatalf("scrape %d: invalid exposition: %v\n%s", i, err, rec.Body.String())
		}
	}
	close(stop)
	wg.Wait()
}

func TestDebugMuxSurface(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "").Inc()

	mux := NewDebugMux(r, false)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "memstats") {
		t.Errorf("/debug/vars: status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 404 {
		t.Errorf("pprof served without the flag: status %d", rec.Code)
	}

	mux = NewDebugMux(r, true)
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Errorf("pprof index with flag: status %d", rec.Code)
	}
}
