// Package obs is the zero-dependency observability core of kglids: an
// atomic metrics registry (counters, gauges, exponential-bucket
// histograms, labeled families) with Prometheus text-format exposition,
// plus a lightweight request-scoped trace context threaded through
// context.Context (see trace.go) and a debug HTTP mux serving /metrics,
// /debug/vars, and optional pprof (see handler.go).
//
// Everything is built on sync/atomic: recording a sample is a handful of
// atomic adds with no allocation and no lock on the hot path, so
// instrumented code stays within the ≤2% overhead budget the server
// bench experiment enforces. Metrics are registered once, at package
// init time of the instrumented package, against the process-wide
// Default registry; exposition walks the registry under a read lock.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// --- scalar instruments -----------------------------------------------------

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an int64 that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a float64 gauge for quantities that are not integral —
// e.g. replication lag in seconds. Stored as IEEE-754 bits in an atomic
// uint64, so Set/Value are single atomic operations.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into cumulative buckets with fixed upper
// bounds, plus a running sum — the Prometheus histogram model. Observe is
// lock-free: one atomic add on the matching bucket, one on the count, and
// a CAS loop on the float64 sum.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, +Inf excluded
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot returns cumulative bucket counts aligned with h.bounds plus
// the +Inf bucket (== total count). Buckets are read without a global
// lock, so under concurrent Observe the cumulative counts may lag the
// count column by in-flight samples; monotonicity within the snapshot is
// restored by the running cumulative sum itself.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.buckets))
	var run uint64
	for i := range h.buckets {
		run += h.buckets[i].Load()
		cum[i] = run
	}
	return cum, run, h.Sum()
}

// ExpBuckets returns count upper bounds growing geometrically from start
// by factor — the standard shape for latency histograms.
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, count >= 1")
	}
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefaultLatencyBuckets spans 100µs to ~105s in x2 steps — wide enough
// for a health check and a cold similarity-edge build alike.
var DefaultLatencyBuckets = ExpBuckets(0.0001, 2, 21)

// --- labeled families -------------------------------------------------------

// labelSep joins label values into a map key; 0xff cannot appear in
// valid UTF-8 label values.
const labelSep = "\xff"

// vec is the shared child-management core of the labeled families.
type vec[T any] struct {
	mu       sync.RWMutex
	children map[string]*T
	order    []string // insertion-ordered keys for deterministic exposition
	make     func() *T
	nLabels  int
}

func newVec[T any](nLabels int, mk func() *T) *vec[T] {
	return &vec[T]{children: map[string]*T{}, make: mk, nLabels: nLabels}
}

func (v *vec[T]) with(labels ...string) *T {
	if len(labels) != v.nLabels {
		panic(fmt.Sprintf("obs: metric expects %d label values, got %d", v.nLabels, len(labels)))
	}
	// The hit path must not allocate: this runs once per request in the
	// server middleware. The joined key is built in a stack scratch
	// buffer, and a map index with a string([]byte) operand does not
	// copy, so only a genuinely new label combination pays for a string.
	n := len(labels)
	for _, l := range labels {
		n += len(l)
	}
	var scratch [96]byte
	buf := scratch[:0]
	if n > len(scratch) {
		buf = make([]byte, 0, n)
	}
	for i, l := range labels {
		if i > 0 {
			buf = append(buf, labelSep...)
		}
		buf = append(buf, l...)
	}
	v.mu.RLock()
	c := v.children[string(buf)]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	key := string(buf)
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[key]; c == nil {
		c = v.make()
		v.children[key] = c
		v.order = append(v.order, key)
	}
	return c
}

// each visits children in insertion order under the read lock.
func (v *vec[T]) each(fn func(labelVals []string, c *T)) {
	v.mu.RLock()
	keys := make([]string, len(v.order))
	copy(keys, v.order)
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		v.mu.RLock()
		c := v.children[k]
		v.mu.RUnlock()
		var vals []string
		if k != "" || v.nLabels > 0 {
			vals = strings.Split(k, labelSep)
		}
		fn(vals, c)
	}
}

// CounterVec is a family of counters sharing a name and label names.
type CounterVec struct{ *vec[Counter] }

// WithLabelValues returns (creating on first use) the child for the
// given label values, in label-name order.
func (v *CounterVec) WithLabelValues(labels ...string) *Counter { return v.with(labels...) }

// GaugeVec is a family of gauges sharing a name and label names.
type GaugeVec struct{ *vec[Gauge] }

// WithLabelValues returns the child gauge for the given label values.
func (v *GaugeVec) WithLabelValues(labels ...string) *Gauge { return v.with(labels...) }

// HistogramVec is a family of histograms sharing a name, label names,
// and bucket bounds.
type HistogramVec struct{ *vec[Histogram] }

// WithLabelValues returns the child histogram for the given label values.
func (v *HistogramVec) WithLabelValues(labels ...string) *Histogram { return v.with(labels...) }

// --- registry ---------------------------------------------------------------

type familyKind int

const (
	kindCounter familyKind = iota
	kindGauge
	kindHistogram
)

func (k familyKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one registered metric name: its metadata plus either a
// single unlabeled instrument or a labeled vec.
type family struct {
	name       string
	help       string
	kind       familyKind
	labelNames []string

	counter    *Counter
	gauge      *Gauge
	floatGauge *FloatGauge
	histogram  *Histogram
	counterVec *CounterVec
	gaugeVec   *GaugeVec
	histVec    *HistogramVec
}

// Registry holds metric families and renders them as Prometheus text
// exposition. Registration panics on a duplicate or invalid name —
// registration happens once at package init, so a panic is a programming
// error surfaced at first run, never in steady state.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// Default is the process-wide registry every instrumented package
// registers into.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) register(f *family) {
	if !validMetricName(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	for _, l := range f.labelNames {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, f.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric name %q", f.name))
	}
	r.families[f.name] = f
}

// NewCounter registers and returns an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// NewCounterVec registers a counter family with the given label names.
func (r *Registry) NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	v := &CounterVec{newVec(len(labelNames), func() *Counter { return &Counter{} })}
	r.register(&family{name: name, help: help, kind: kindCounter, labelNames: labelNames, counterVec: v})
	return v
}

// NewGauge registers and returns an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// NewFloatGauge registers and returns an unlabeled float-valued gauge.
func (r *Registry) NewFloatGauge(name, help string) *FloatGauge {
	g := &FloatGauge{}
	r.register(&family{name: name, help: help, kind: kindGauge, floatGauge: g})
	return g
}

// NewGaugeVec registers a gauge family with the given label names.
func (r *Registry) NewGaugeVec(name, help string, labelNames ...string) *GaugeVec {
	v := &GaugeVec{newVec(len(labelNames), func() *Gauge { return &Gauge{} })}
	r.register(&family{name: name, help: help, kind: kindGauge, labelNames: labelNames, gaugeVec: v})
	return v
}

// NewHistogram registers and returns an unlabeled histogram with the
// given bucket upper bounds (+Inf is implicit).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.register(&family{name: name, help: help, kind: kindHistogram, histogram: h})
	return h
}

// NewHistogramVec registers a histogram family sharing bucket bounds
// across children.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	sort.Float64s(bounds)
	v := &HistogramVec{newVec(len(labelNames), func() *Histogram { return newHistogram(bounds) })}
	r.register(&family{name: name, help: help, kind: kindHistogram, labelNames: labelNames, histVec: v})
	return v
}

// sortedFamilies snapshots the registered families in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "le" { // le is reserved for histogram buckets
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
