package obs

import (
	"context"
	"sync"
	"time"
)

// Trace is a request-scoped collection of named stage timings, threaded
// through context.Context so the SPARQL engine, the store, and the
// snapshot layer can report spans without knowing who is listening. The
// zero trace is ready to use; a nil *Trace is a valid no-op receiver, so
// un-instrumented call paths (library use, tests) pay one nil check.
type Trace struct {
	// ID correlates the trace with logs — the server sets it to the
	// request's X-Request-ID.
	ID string

	start time.Time
	mu    sync.Mutex
	spans []Span
}

// Span is one completed stage within a trace.
type Span struct {
	Name  string
	Start time.Time
	Dur   time.Duration
}

// NewTrace starts a trace identified by id.
func NewTrace(id string) *Trace {
	return &Trace{ID: id, start: time.Now()}
}

// StartSpan begins a stage and returns its closer; call the closer when
// the stage completes. Safe on a nil trace (both calls no-op).
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		d := time.Since(start)
		t.mu.Lock()
		t.spans = append(t.spans, Span{Name: name, Start: start, Dur: d})
		t.mu.Unlock()
	}
}

// AddSpan records an already-measured stage. Safe on a nil trace.
func (t *Trace) AddSpan(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Start: start, Dur: d})
	t.mu.Unlock()
}

// Spans returns a copy of the completed spans in completion order. Safe
// on a nil trace (returns nil).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Elapsed is the time since the trace started; zero for a nil trace.
func (t *Trace) Elapsed() time.Duration {
	if t == nil || t.start.IsZero() {
		return 0
	}
	return time.Since(t.start)
}

// traceKey is the private context key for the trace.
type traceKey struct{}

// WithTrace returns a context carrying t.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil — and nil is safe
// to call every Trace method on, so callers never need to branch.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
