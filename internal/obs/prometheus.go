package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4): families in name order, one
// # HELP / # TYPE pair per family, children in sorted label order,
// histograms expanded into cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		switch {
		case f.counter != nil:
			writeSample(bw, f.name, f.labelNames, nil, "", formatUint(f.counter.Value()))
		case f.gauge != nil:
			writeSample(bw, f.name, f.labelNames, nil, "", formatInt(f.gauge.Value()))
		case f.floatGauge != nil:
			writeSample(bw, f.name, f.labelNames, nil, "", formatFloat(f.floatGauge.Value()))
		case f.histogram != nil:
			writeHistogram(bw, f.name, nil, nil, f.histogram)
		case f.counterVec != nil:
			f.counterVec.each(func(vals []string, c *Counter) {
				writeSample(bw, f.name, f.labelNames, vals, "", formatUint(c.Value()))
			})
		case f.gaugeVec != nil:
			f.gaugeVec.each(func(vals []string, g *Gauge) {
				writeSample(bw, f.name, f.labelNames, vals, "", formatInt(g.Value()))
			})
		case f.histVec != nil:
			f.histVec.each(func(vals []string, h *Histogram) {
				writeHistogram(bw, f.name, f.labelNames, vals, h)
			})
		}
	}
	return bw.Flush()
}

func writeHistogram(w *bufio.Writer, name string, labelNames, labelVals []string, h *Histogram) {
	cum, count, sum := h.snapshot()
	for i, bound := range h.bounds {
		writeSample(w, name+"_bucket", labelNames, labelVals, formatFloat(bound), formatUint(cum[i]))
	}
	writeSample(w, name+"_bucket", labelNames, labelVals, "+Inf", formatUint(count))
	writeSample(w, name+"_sum", labelNames, labelVals, "", formatFloat(sum))
	writeSample(w, name+"_count", labelNames, labelVals, "", formatUint(count))
}

// writeSample emits one line: name{labels,le="..."} value. le, when
// non-empty, is appended after the family labels.
func writeSample(w *bufio.Writer, name string, labelNames, labelVals []string, le, value string) {
	w.WriteString(name)
	if len(labelVals) > 0 || le != "" {
		w.WriteByte('{')
		sep := false
		for i, ln := range labelNames {
			if sep {
				w.WriteByte(',')
			}
			sep = true
			w.WriteString(ln)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(labelVals[i]))
			w.WriteByte('"')
		}
		if le != "" {
			if sep {
				w.WriteByte(',')
			}
			w.WriteString(`le="`)
			w.WriteString(le)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }
func formatInt(v int64) string   { return strconv.FormatInt(v, 10) }
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// --- exposition validation --------------------------------------------------

// ValidateExposition parses Prometheus text exposition and verifies its
// structural invariants: every sample line parses, every sample is
// preceded by a # TYPE for its family, label values are properly quoted
// and escaped, histogram buckets are cumulative-monotone, end with
// le="+Inf", and agree with their _count series. It is the shared
// checker behind the golden test and the CI /metrics smoke step.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	types := map[string]string{} // family name -> type

	// histogram bookkeeping, keyed by family + non-le labels
	lastBucket := map[string]float64{} // previous le bound
	lastCum := map[string]uint64{}     // previous cumulative count
	infCount := map[string]uint64{}    // +Inf bucket value
	countVal := map[string]uint64{}    // _count series value

	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				if len(fields) < 4 {
					return fmt.Errorf("line %d: malformed TYPE comment", line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", line, fields[3])
				}
				if _, dup := types[fields[2]]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", line, fields[2])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		name, labels, value, err := parseSample(text)
		if err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		base := histogramBase(name, types)
		if base == "" {
			if _, ok := types[name]; !ok {
				return fmt.Errorf("line %d: sample %q has no preceding # TYPE", line, name)
			}
			continue
		}
		// Histogram series: track bucket monotonicity and count agreement.
		le, rest := splitLE(labels)
		key := base + "\x00" + rest
		switch {
		case strings.HasSuffix(name, "_bucket"):
			if le == "" {
				return fmt.Errorf("line %d: %s without le label", line, name)
			}
			bound := math.Inf(1)
			if le != "+Inf" {
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("line %d: bad le %q: %v", line, le, err)
				}
			}
			cum, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return fmt.Errorf("line %d: bucket value %q not a count", line, value)
			}
			if prev, ok := lastBucket[key]; ok {
				if bound <= prev {
					return fmt.Errorf("line %d: bucket bounds not increasing (%v after %v)", line, bound, prev)
				}
				if cum < lastCum[key] {
					return fmt.Errorf("line %d: cumulative bucket count decreased (%d after %d)", line, cum, lastCum[key])
				}
			}
			lastBucket[key] = bound
			lastCum[key] = cum
			if le == "+Inf" {
				infCount[key] = cum
			}
		case strings.HasSuffix(name, "_count"):
			c, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return fmt.Errorf("line %d: count value %q not a count", line, value)
			}
			countVal[key] = c
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key, c := range countVal {
		inf, ok := infCount[key]
		if !ok {
			return fmt.Errorf("histogram %q has _count but no le=\"+Inf\" bucket", strings.SplitN(key, "\x00", 2)[0])
		}
		if inf != c {
			return fmt.Errorf("histogram %q: +Inf bucket %d != count %d", strings.SplitN(key, "\x00", 2)[0], inf, c)
		}
	}
	if len(types) == 0 {
		return fmt.Errorf("exposition contains no metric families")
	}
	return nil
}

// histogramBase returns the family name when name is a histogram series
// (_bucket/_sum/_count of a family typed histogram), else "".
func histogramBase(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			base := strings.TrimSuffix(name, suf)
			if types[base] == "histogram" {
				return base
			}
		}
	}
	return ""
}

// splitLE removes the le pair from a rendered label block, returning its
// value and the remaining canonical label string.
func splitLE(labels []label) (le string, rest string) {
	var b strings.Builder
	for _, l := range labels {
		if l.name == "le" {
			le = l.value
			continue
		}
		b.WriteString(l.name)
		b.WriteByte('=')
		b.WriteString(l.value)
		b.WriteByte(';')
	}
	return le, b.String()
}

type label struct{ name, value string }

// parseSample parses `name{l="v",...} value` into its parts, enforcing
// quoting and escape rules.
func parseSample(s string) (name string, labels []label, value string, err error) {
	i := 0
	for i < len(s) && isNameChar(s[i], i == 0) {
		i++
	}
	if i == 0 {
		return "", nil, "", fmt.Errorf("sample does not start with a metric name: %q", s)
	}
	name = s[:i]
	if i < len(s) && s[i] == '{' {
		i++
		for {
			for i < len(s) && s[i] == ' ' {
				i++
			}
			if i < len(s) && s[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(s) && isNameChar(s[j], j == i) {
				j++
			}
			if j == i || j >= len(s) || s[j] != '=' {
				return "", nil, "", fmt.Errorf("malformed label in %q", s)
			}
			ln := s[i:j]
			j++ // past '='
			if j >= len(s) || s[j] != '"' {
				return "", nil, "", fmt.Errorf("unquoted label value in %q", s)
			}
			j++
			var val strings.Builder
			for j < len(s) && s[j] != '"' {
				if s[j] == '\\' {
					j++
					if j >= len(s) {
						return "", nil, "", fmt.Errorf("dangling escape in %q", s)
					}
					switch s[j] {
					case '\\', '"', 'n':
					default:
						return "", nil, "", fmt.Errorf("invalid escape \\%c in %q", s[j], s)
					}
				}
				val.WriteByte(s[j])
				j++
			}
			if j >= len(s) {
				return "", nil, "", fmt.Errorf("unterminated label value in %q", s)
			}
			labels = append(labels, label{name: ln, value: val.String()})
			j++ // past closing quote
			if j < len(s) && s[j] == ',' {
				j++
			}
			i = j
		}
	}
	rest := strings.TrimSpace(s[i:])
	if rest == "" {
		return "", nil, "", fmt.Errorf("sample %q has no value", s)
	}
	value = strings.Fields(rest)[0]
	if value != "+Inf" && value != "-Inf" && value != "NaN" {
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return "", nil, "", fmt.Errorf("sample value %q is not a number", value)
		}
	}
	return name, labels, value, nil
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}
