package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// NewDebugMux builds the diagnostics surface served on -debug-addr,
// deliberately separate from the public /api/v1 mux:
//
//	/metrics      Prometheus text exposition of reg
//	/debug/vars   expvar JSON (cmdline, memstats, anything Published)
//	/debug/pprof  runtime profiles, only when enablePprof is set
//
// collect functions run before each /metrics render — the server uses
// one to refresh point-in-time gauges (store sizes, cache entries,
// queue depth) from the live platform so scrape cost is paid by the
// scraper, not the hot path.
func NewDebugMux(reg *Registry, enablePprof bool, collect ...func()) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		for _, fn := range collect {
			fn()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// The write already started; nothing useful to send the client.
			return
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	if enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
