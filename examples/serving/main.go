// Serving walkthrough: run the KGLiDS platform behind the HTTP serving
// layer and consume it the way a remote integration would — through the
// typed /api/v1 client of package kglids/client. Covers discovery with
// cursor pagination, conditional GET against the store-generation ETag,
// the SPARQL 1.1 protocol endpoint, and the asynchronous ingest lifecycle
// (submit → poll → done → delete).
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"kglids"
	"kglids/client"
	"kglids/internal/ingest"
	"kglids/internal/lakegen"
	"kglids/internal/server"
)

func main() {
	// 1. Bootstrap a platform and mount the HTTP serving layer on a
	// loopback listener (a real deployment runs cmd/kglids-server; the
	// handler is identical).
	lake := lakegen.Generate(lakegen.Spec{
		Name: "serve", Families: 4, TablesPerFamily: 3, NoiseTables: 4,
		RowsPerTable: 120, QueryTables: 4, Seed: 7,
	})
	var tables []kglids.Table
	for _, df := range lake.Tables {
		tables = append(tables, kglids.Table{Dataset: lake.Dataset[df.Name], Frame: df})
	}
	plat := kglids.Bootstrap(kglids.Options{}, tables)
	mgr := ingest.New(plat.Core(), ingest.Options{Workers: 2, QueueSize: 16})
	defer mgr.Close()
	ts := httptest.NewServer(server.New(plat, server.Options{Ingest: mgr}))
	defer ts.Close()

	c, err := client.New(ts.URL)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// 2. Stats carry the store generation — the same number every read
	// endpoint serves as its ETag.
	stats, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %d tables, %d triples (generation %d)\n",
		stats.Tables, stats.Triples, stats.Generation)

	// 3. Discovery through stable DTOs: hits are {id, name, score}, and
	// the id plugs straight into the other endpoints.
	q := lake.QueryTables[0]
	hits, err := c.SearchAll(ctx, q[:4])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsearch %q: %d hits\n", q[:4], len(hits))
	for i, h := range hits {
		if i == 3 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %-28s score %.3f\n", h.ID, h.Score)
	}

	tableID := lake.Dataset[q] + "/" + q
	union, err := c.Unionable(ctx, tableID, 5, client.PageOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop unionable with %s:\n", tableID)
	for _, h := range union.Items {
		fmt.Printf("  %-28s score %.3f\n", h.ID, h.Score)
	}

	// 4. Cursor pagination: walk the table inventory two entries at a
	// time (AllTables does this loop for you).
	fmt.Println("\ntable inventory, two per page:")
	page := client.PageOpts{Limit: 2}
	for pages := 1; ; pages++ {
		pg, err := c.Tables(ctx, page)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  page %d: %d of %d\n", pages, len(pg.Items), pg.Total)
		if pg.NextCursor == "" {
			break
		}
		page.Cursor = pg.NextCursor
	}

	// 5. SPARQL 1.1 protocol: POST application/sparql-query, decode
	// results-JSON bindings.
	res, err := c.SPARQL(ctx, `SELECT ?dt (COUNT(?c) AS ?n) WHERE {
		?c a kglids:Column ; kglids:dataType ?dt . } GROUP BY ?dt ORDER BY DESC(?n)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncolumn type histogram via SPARQL:")
	for _, b := range res.Results.Bindings {
		fmt.Printf("  %-8s %s\n", b["dt"].Value, b["n"].Value)
	}

	// 6. Live ingestion: submit a table, await the asynchronous job, and
	// watch the generation move — every cached ETag just went stale.
	ref, err := c.Ingest(ctx, []client.IngestTable{{
		Dataset: "live", Name: "readings.csv",
		Columns: []client.IngestColumn{
			{Name: "sensor", Values: []any{"s1", "s2", "s3", "s4"}},
			{Name: "value", Values: []any{0.4, 1.8, 0.9, 2.2}},
		},
	}})
	if err != nil {
		log.Fatal(err)
	}
	job, err := c.WaitJob(ctx, ref.Job, 50*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	after, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ningest job %d: %s added=%v\n", job.ID, job.State, job.Added)
	fmt.Printf("generation %d -> %d (conditional GETs revalidate)\n",
		stats.Generation, after.Generation)

	// 7. Remove it again; IDs with any characters round-trip because the
	// client percent-escapes path segments.
	ref, err = c.DeleteTable(ctx, "live/readings.csv")
	if err != nil {
		log.Fatal(err)
	}
	if job, err = c.WaitJob(ctx, ref.Job, 50*time.Millisecond); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delete job %d: %s removed=%v\n", job.ID, job.State, job.Removed)
}
