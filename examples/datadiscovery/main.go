// Data discovery walkthrough: the heart-failure scenario of the paper's
// Section 5 — keyword search, unionable-column recommendation, join-path
// discovery, library discovery, and pipeline discovery.
package main

import (
	"fmt"
	"log"

	"kglids"
	"kglids/internal/dataframe"
	"kglids/internal/pipegen"
)

// mkTable builds a small table from literal columns.
func mkTable(name string, cols [][2]any) *kglids.DataFrame {
	df := dataframe.New(name)
	for _, c := range cols {
		s := &dataframe.Series{Name: c[0].(string)}
		for _, v := range c[1].([]string) {
			s.Cells = append(s.Cells, dataframe.ParseCell(v))
		}
		df.AddColumn(s)
	}
	return df
}

func main() {
	cities := []string{"Montreal", "Toronto", "Vancouver", "Ottawa", "Boston", "Chicago", "Seattle", "London"}
	heartDisease := mkTable("heart_disease_patients.csv", [][2]any{
		{"gender", []string{"male", "female", "male", "male", "female", "male", "female", "male"}},
		{"age", []string{"63", "37", "41", "56", "57", "44", "52", "57"}},
		{"city", []string{cities[0], cities[1], cities[2], cities[3], cities[4], cities[5], cities[6], cities[7]}},
		{"target", []string{"1", "0", "1", "0", "1", "1", "0", "1"}},
	})
	heartFailure := mkTable("heart_failure_clinical.csv", [][2]any{
		{"sex", []string{"male", "female", "female", "male", "male", "female", "male", "female"}},
		{"age", []string{"60", "42", "45", "50", "61", "48", "55", "52"}},
		{"town", []string{cities[0], cities[1], cities[2], cities[3], cities[4], cities[5], cities[6], cities[7]}},
	})
	cityPop := mkTable("city_population.csv", [][2]any{
		{"location", []string{cities[0], cities[1], cities[2], cities[3], cities[4], cities[5], cities[6], cities[7]}},
		{"residents", []string{"1704694", "2731571", "631486", "934243", "675647", "2746388", "737015", "8982000"}},
	})

	plat := kglids.Bootstrap(kglids.Options{}, []kglids.Table{
		{Dataset: "heart-disease-uci", Frame: heartDisease},
		{Dataset: "heart-failure-prediction", Frame: heartFailure},
		{Dataset: "world-cities", Frame: cityPop},
	})

	// Step 1: search_keywords([['heart','disease'], 'patients']).
	hits := plat.SearchKeywords([][]string{{"heart", "disease"}, {"patients"}})
	fmt.Println("search_keywords([['heart','disease'],['patients']]):")
	for _, h := range hits {
		fmt.Printf("  %s\n", h.Name)
	}
	if len(hits) == 0 {
		log.Fatal("no tables found")
	}

	// Step 2: find_unionable_columns between the two heart tables.
	failureHits := plat.SearchKeywords([][]string{{"failure"}})
	fmt.Println("\nfind_unionable_columns(heart_disease, heart_failure):")
	for _, m := range plat.FindUnionableColumns(hits[0], failureHits[0]) {
		fmt.Printf("  %-10s ~ %-10s (%s, %.2f)\n", m.AName, m.BName, m.Kind, m.Score)
	}

	// Step 3: get_path_to_table — join path to the city table.
	cityHits := plat.SearchKeywords([][]string{{"population"}})
	paths := plat.GetPathToTable(hits[0], cityHits[0], 2)
	fmt.Println("\nget_path_to_table(heart_disease, city_population, hops=2):")
	for _, p := range paths {
		for i, tbl := range p.Tables {
			if i > 0 {
				fmt.Print(" -> ")
			}
			fmt.Print(tbl.Local())
		}
		fmt.Printf("  (score %.3f)\n", p.Score)
	}

	// Step 4: library + pipeline discovery over an added corpus.
	ds := pipegen.FrameDataset("heart-disease-uci", heartDisease, "target")
	corpus := pipegen.Generate(pipegen.Options{NumPipelines: 15, Datasets: []pipegen.Dataset{ds}, Seed: 3})
	scripts := make([]kglids.Script, len(corpus))
	for i, g := range corpus {
		scripts[i] = g.Script
	}
	plat.AddPipelines(scripts)

	top, err := plat.GetTopUsedLibraries(5, "classification")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nget_top_used_libraries(5, 'classification'):")
	for _, lc := range top {
		fmt.Printf("  %-14s %d pipelines\n", lc.Library, lc.Pipelines)
	}

	pipes := plat.GetPipelinesCallingLibraries("pandas.read_csv", "sklearn.model_selection.train_test_split")
	fmt.Printf("\nget_pipelines_calling_libraries(read_csv, train_test_split): %d pipelines\n", len(pipes))
	for _, p := range pipes[:min(3, len(pipes))] {
		fmt.Printf("  %s (votes %d)\n", p.Pipeline.Local(), p.Votes)
	}
}
