// AutoML: the KGpip-revised flow of paper Section 4.4 — mine estimator
// usages and hyperparameters from a pipeline corpus, recommend a
// classifier and its hyperparameters for an unseen dataset, and compare
// the LiDS-seeded hyperparameter search against the unseeded baseline
// under the same time budget (the Figure 9 protocol).
package main

import (
	"fmt"
	"time"

	"kglids"
	"kglids/internal/lakegen"
	"kglids/internal/pipegen"
)

func main() {
	// Corpus datasets + pipelines (the platform's knowledge).
	var tables []kglids.Table
	var datasets []pipegen.Dataset
	for i := 0; i < 6; i++ {
		task := lakegen.GenerateTask(lakegen.TaskSpec{
			ID: i, Name: fmt.Sprintf("corpus_%02d", i),
			Rows: 200 + i*50, NumFeatures: 5, CatFeatures: 1, Classes: 2,
			Seed: int64(10 + i),
		})
		tables = append(tables, kglids.Table{Dataset: task.Name, Frame: task.Frame})
		datasets = append(datasets, pipegen.FrameDataset(task.Name, task.Frame, task.Target))
	}
	plat := kglids.Bootstrap(kglids.Options{}, tables)
	corpus := pipegen.Generate(pipegen.Options{NumPipelines: 120, Datasets: datasets, Seed: 20})
	scripts := make([]kglids.Script, len(corpus))
	for i, g := range corpus {
		scripts[i] = g.Script
	}
	plat.AddPipelines(scripts)
	plat.TrainAutoML(true)

	// Unseen dataset.
	unseen := lakegen.GenerateTask(lakegen.TaskSpec{
		ID: 99, Name: "unseen", Rows: 400, NumFeatures: 6, CatFeatures: 1,
		Classes: 2, Seed: 77,
	})

	// recommend_ml_models.
	models := plat.RecommendMLModels(unseen.Frame)
	fmt.Println("recommend_ml_models:")
	for _, m := range models[:min(4, len(models))] {
		fmt.Printf("  %-48s votes %6d  uses %d\n", m.Classifier, m.Votes, m.Uses)
	}

	// recommend_hyperparameters for the top classifier.
	if len(models) > 0 {
		params := plat.RecommendHyperparameters(unseen.Frame, models[0].Classifier)
		fmt.Printf("\nrecommend_hyperparameters(%s):\n", models[0].Classifier)
		for name, v := range params {
			fmt.Printf("  %-16s = %g\n", name, v)
		}
	}

	// Full AutoML run under a fixed budget.
	budget := 400 * time.Millisecond
	res, err := plat.AutoML(unseen.Frame, "target", budget)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nAutoML (LiDS-seeded, %s budget): %s F1 = %.4f after %d trials\n",
		budget, res.Classifier, res.F1, res.Trials)
	fmt.Println("chosen hyperparameters:")
	for name, v := range res.Params {
		fmt.Printf("  %-16s = %g\n", name, v)
	}
}
