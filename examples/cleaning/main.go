// On-demand data preparation: train the cleaning and transformation GNNs
// (paper Section 4) from a corpus of task datasets, then clean and
// transform an unseen dataset and measure the downstream effect with a
// random forest — the protocol of Tables 5 and 6.
package main

import (
	"fmt"

	"kglids"
	"kglids/internal/cleaning"
	"kglids/internal/lakegen"
	"kglids/internal/ml"
	"kglids/internal/profiler"
	"kglids/internal/transform"
)

func score(df *kglids.DataFrame, target string) float64 {
	m, err := df.ToMatrix(target)
	if err != nil {
		return 0
	}
	return ml.CrossValidate(func() ml.Classifier {
		f := ml.NewRandomForest(15)
		f.MaxDepth = 10
		return f
	}, m.X, m.Y, 5, ml.F1)
}

func main() {
	plat := kglids.Bootstrap(kglids.Options{}, nil)
	p := profiler.New()

	// Offline phase: label training datasets with the operation that
	// maximizes downstream model performance (what the LiDS graph mines
	// from top-voted pipelines) and train the GNNs.
	var cexs []cleaning.Example
	var sexs []transform.ScalerExample
	var uexs []transform.UnaryExample
	fmt.Println("training on-demand models from 16 offline datasets...")
	for i := 0; i < 16; i++ {
		task := lakegen.GenerateTask(lakegen.TaskSpec{
			ID: i, Name: fmt.Sprintf("train_%02d", i),
			Rows: 120 + (i%4)*60, NumFeatures: 4 + i%4, CatFeatures: i % 2,
			Classes: 2, NullRate: 0.05 + 0.02*float64(i%4), Skew: i%2 == 0,
			Seed: int64(100 + i),
		})
		bestClean, bestF1 := cleaning.Ops[0], -1.0
		for _, op := range cleaning.Ops {
			cleaned, err := cleaning.Apply(op, task.Frame)
			if err != nil {
				continue
			}
			if s := score(cleaned, task.Target); s > bestF1 {
				bestClean, bestF1 = op, s
			}
		}
		cexs = append(cexs, cleaning.Example{Embedding: cleaning.MissingValueEmbedding(p, task.Frame), Op: bestClean})
		bestScaler, bestF1 := transform.Scalers[0], -1.0
		for _, op := range transform.Scalers {
			scaled, err := transform.ApplyScaler(op, task.Frame, task.Target)
			if err != nil {
				continue
			}
			if s := score(scaled, task.Target); s > bestF1 {
				bestScaler, bestF1 = op, s
			}
		}
		sexs = append(sexs, transform.ScalerExample{Embedding: transform.TableEmbedding(p, task.Frame), Op: bestScaler})
		cp := p.ProfileColumn(task.Name, task.Name, task.Frame.ColumnAt(0))
		uexs = append(uexs, transform.UnaryExample{Embedding: cp.Embed, Op: transform.Unaries[i%3]})
	}
	plat.TrainCleaningModel(cexs)
	plat.TrainTransformModels(sexs, uexs)

	// Inference phase on an unseen dataset with missing values.
	unseen := lakegen.GenerateTask(lakegen.TaskSpec{
		ID: 99, Name: "unseen_titanic_like", Rows: 500, NumFeatures: 6,
		CatFeatures: 2, Classes: 2, NullRate: 0.08, Skew: true, Seed: 999,
	})
	fmt.Printf("\nunseen dataset: %d rows, %d nulls\n", unseen.Frame.NumRows(), unseen.Frame.NullCount())
	fmt.Printf("baseline (drop nulls) F1: %.4f\n", score(unseen.Frame.DropNullRows(), unseen.Target))

	recs := plat.RecommendCleaningOperations(unseen.Frame)
	fmt.Println("\nrecommend_cleaning_operations:")
	for _, r := range recs {
		fmt.Printf("  %-18s %.3f\n", r.Op, r.Score)
	}
	cleaned, err := plat.ApplyCleaningOperations(recs[0].Op, unseen.Frame)
	if err != nil {
		panic(err)
	}
	fmt.Printf("after %s: %d nulls, F1 = %.4f\n", recs[0].Op, cleaned.NullCount(), score(cleaned, unseen.Target))

	scalers, unaries := plat.RecommendTransformations(cleaned, unseen.Target)
	fmt.Println("\nrecommend_transformations:")
	for _, s := range scalers {
		fmt.Printf("  scaler %-16s %.3f\n", s.Op, s.Score)
	}
	for _, u := range unaries[:min(4, len(unaries))] {
		fmt.Printf("  column %-10s -> %s\n", u.Column, u.Op)
	}
	transformed, err := plat.ApplyTransformations(cleaned, unseen.Target)
	if err != nil {
		panic(err)
	}
	fmt.Printf("after transformation: F1 = %.4f\n", score(transformed, unseen.Target))
}
