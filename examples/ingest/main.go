// Ingest walkthrough: run a KGLiDS platform as a long-lived service and
// mutate it live — add tables, resubmit them unchanged (skipped via
// content fingerprints), update one with changed content, and remove one —
// all through the asynchronous job queue of internal/ingest, while
// discovery keeps answering. No re-bootstrap at any point.
package main

import (
	"fmt"
	"log"
	"time"

	"kglids"
	"kglids/internal/core"
	"kglids/internal/ingest"
	"kglids/internal/lakegen"
)

func main() {
	// 1. Bootstrap over most of a generated lake; hold two tables back to
	// ingest live later.
	lake := lakegen.Generate(lakegen.Spec{
		Name: "ingest", Families: 5, TablesPerFamily: 3, NoiseTables: 5,
		RowsPerTable: 120, QueryTables: 5, Seed: 1,
	})
	var tables []kglids.Table
	for _, df := range lake.Tables {
		tables = append(tables, kglids.Table{Dataset: lake.Dataset[df.Name], Frame: df})
	}
	n := len(tables)
	base, held := tables[:n-2], tables[n-2:]

	start := time.Now()
	plat := kglids.Bootstrap(kglids.Options{}, base)
	fmt.Printf("bootstrapped %d tables in %v; %d held back for live ingestion\n",
		len(base), time.Since(start).Round(time.Millisecond), len(held))

	// 2. Start the ingestion manager: a bounded worker pool draining an
	// asynchronous job queue. Seed fingerprints for the bootstrap tables so
	// resubmitting any of them unchanged is a no-op.
	mgr := ingest.New(plat.Core(), ingest.Options{Workers: 2, QueueSize: 16})
	defer mgr.Close()
	seed := make([]core.Table, len(base))
	for i, t := range base {
		seed[i] = core.Table{Dataset: t.Dataset, Frame: t.Frame}
	}
	mgr.SeedFingerprints(seed)

	// 3. Submit the held-back tables as one add job and follow it.
	payload := make([]core.Table, len(held))
	for i, t := range held {
		payload[i] = core.Table{Dataset: t.Dataset, Frame: t.Frame}
	}
	jobID, err := mgr.Submit(payload)
	if err != nil {
		log.Fatal(err)
	}
	job, _ := mgr.Wait(jobID)
	fmt.Printf("job %d: state=%s added=%v\n", job.ID, job.State, job.Added)
	fmt.Printf("platform now serves %d tables\n", plat.Stats().Tables)

	// 4. Resubmit the same tables unchanged: the content fingerprints say
	// nothing changed, so the job skips them without touching the platform.
	jobID, _ = mgr.Submit(payload)
	job, _ = mgr.Wait(jobID)
	fmt.Printf("job %d: state=%s skipped=%v (unchanged resubmission)\n",
		job.ID, job.State, job.Skipped)

	// 5. Update: resubmit one table with changed content (fewer rows). Same
	// ID, different fingerprint — the old version is replaced atomically.
	changed := core.Table{Dataset: held[0].Dataset, Frame: held[0].Frame.Head(40)}
	jobID, _ = mgr.Submit([]core.Table{changed})
	job, _ = mgr.Wait(jobID)
	fmt.Printf("job %d: state=%s updated=%v\n", job.ID, job.State, job.Updated)

	// 6. Discovery sees the ingested tables immediately — no restart.
	heldID := held[1].Dataset + "/" + held[1].Frame.Name
	hits, err := plat.UnionableTables(heldID, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop unionable tables for live-ingested %s:\n", heldID)
	for _, r := range hits {
		fmt.Printf("  %-30s score %.3f\n", r.Name, r.Score)
	}

	// 7. Remove a table: its named graph, similarity edges, and embeddings
	// are retracted; discovery stops returning it the moment the job lands.
	removeID := base[0].Dataset + "/" + base[0].Frame.Name
	jobID, _ = mgr.SubmitRemoval(removeID)
	job, _ = mgr.Wait(jobID)
	fmt.Printf("\njob %d: state=%s removed=%v\n", job.ID, job.State, job.Removed)
	fmt.Printf("platform now serves %d tables; has(%s)=%v\n",
		plat.Stats().Tables, removeID, plat.HasTable(removeID))

	// 8. The job log is queryable the whole time (GET /jobs over HTTP).
	fmt.Println("\njob history:")
	for _, j := range mgr.Jobs() {
		fmt.Printf("  #%d %-6s %-7s added=%d updated=%d skipped=%d removed=%d\n",
			j.ID, j.Kind, j.State, len(j.Added), len(j.Updated), len(j.Skipped), len(j.Removed))
	}
}
