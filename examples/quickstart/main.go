// Quickstart: bootstrap KGLiDS over a small generated data lake, add a
// pipeline corpus, and run the basic discovery queries of the paper's
// Section 5 against the LiDS graph.
package main

import (
	"fmt"
	"log"

	"kglids"
	"kglids/internal/lakegen"
	"kglids/internal/pipegen"
)

func main() {
	// 1. Generate a small data lake (stand-in for a Kaggle/OpenML corpus).
	lake := lakegen.Generate(lakegen.Spec{
		Name: "quickstart", Families: 5, TablesPerFamily: 3, NoiseTables: 5,
		RowsPerTable: 120, QueryTables: 5, Seed: 1,
	})
	var tables []kglids.Table
	for _, df := range lake.Tables {
		tables = append(tables, kglids.Table{Dataset: lake.Dataset[df.Name], Frame: df})
	}

	// 2. Bootstrap the platform: profiling, global schema, embeddings.
	plat := kglids.Bootstrap(kglids.Options{}, tables)
	stats := plat.Stats()
	fmt.Printf("LiDS graph: %d triples, %d columns, %d tables, %d similarity edges\n",
		stats.Triples, stats.Columns, stats.Tables, stats.SimilarityEdges)

	// 3. Abstract a pipeline corpus into named graphs.
	ds := pipegen.FrameDataset(lake.Dataset[lake.Tables[0].Name], lake.Tables[0], lake.Tables[0].Columns()[0])
	corpus := pipegen.Generate(pipegen.Options{NumPipelines: 25, Datasets: []pipegen.Dataset{ds}, Seed: 2})
	scripts := make([]kglids.Script, len(corpus))
	for i, g := range corpus {
		scripts[i] = g.Script
	}
	plat.AddPipelines(scripts)
	fmt.Printf("added %d pipelines (%d named graphs)\n", len(scripts), plat.Stats().NamedGraphs)

	// 4. Discovery: unionable tables for the first query table.
	q := lake.QueryTables[0]
	results, err := plat.UnionableTables(lake.Dataset[q]+"/"+q, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop unionable tables for %s:\n", q)
	for _, r := range results {
		fmt.Printf("  %-30s score %.3f\n", r.Name, r.Score)
	}

	// 5. Ad-hoc SPARQL over the LiDS graph.
	res, err := plat.Query(`
		SELECT ?typ (COUNT(?c) AS ?n) WHERE {
			?c a kglids:Column ; kglids:dataType ?typ .
		} GROUP BY ?typ ORDER BY DESC(?n)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncolumn fine-grained types:")
	for _, row := range res.Rows {
		n, _ := row["n"].AsInt()
		fmt.Printf("  %-20s %d\n", row["typ"].Value, n)
	}

	// 6. Library popularity (Figure 4 style).
	top, err := plat.GetTopKLibrariesUsed(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop libraries across pipelines:")
	for _, lc := range top {
		fmt.Printf("  %-14s %d pipelines\n", lc.Library, lc.Pipelines)
	}
}
