package kglids

// Tests for the replication protocol: a follower seeded from any snapshot
// of the primary and replaying the mutation changelog must become
// indistinguishable from the primary — same store generation, same Stats,
// same similarity answers, same SPARQL results. The property must hold for
// any snapshot point and any mutation sequence, including while concurrent
// readers hit the follower mid-replay.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"kglids/internal/lakegen"
	"kglids/internal/pipeline"
)

// replayFrom tails the primary's changelog from the replica's snapshot
// position until at head, applying every record. Returns the final cursor.
func replayFrom(t *testing.T, primary, replica *Platform, pageSize int) uint64 {
	t.Helper()
	cursor := replica.ChangelogPosition()
	for {
		view, err := primary.ChangelogSince(cursor, pageSize)
		if err != nil {
			t.Fatalf("ChangelogSince(%d): %v", cursor, err)
		}
		for _, e := range view.Entries {
			if e.Seq != cursor+1 {
				t.Fatalf("changelog gap: cursor %d, next record %d", cursor, e.Seq)
			}
			if err := replica.ApplyChange(e.Kind, e.Generation, e.Payload); err != nil {
				t.Fatalf("apply record %d (%s): %v", e.Seq, e.Kind, err)
			}
			cursor = e.Seq
		}
		if view.AtHead {
			return cursor
		}
	}
}

// assertConverged checks the follower answers exactly like the primary.
func assertConverged(t *testing.T, primary, replica *Platform, bench *lakegen.Benchmark) {
	t.Helper()
	if pg, rg := primary.Generation(), replica.Generation(); pg != rg {
		t.Fatalf("generation: primary %d, replica %d", pg, rg)
	}
	if ps, rs := primary.Stats(), replica.Stats(); !reflect.DeepEqual(ps, rs) {
		t.Fatalf("stats diverge:\n  primary: %+v\n  replica: %+v", ps, rs)
	}
	const q = `SELECT ?n WHERE { ?t a kglids:Table ; kglids:name ?n . }`
	if pn, rn := sparqlProbe(t, primary, q, "n"), sparqlProbe(t, replica, q, "n"); !equalStrings(pn, rn) {
		t.Fatalf("SPARQL table names diverge:\n  primary: %v\n  replica: %v", pn, rn)
	}
	for _, name := range bench.QueryTables {
		id := bench.Dataset[name] + "/" + name
		if !primary.HasTable(id) {
			continue
		}
		pu, perr := primary.UnionableTables(id, 5)
		ru, rerr := replica.UnionableTables(id, 5)
		if (perr == nil) != (rerr == nil) {
			t.Fatalf("unionable(%s): primary err %v, replica err %v", id, perr, rerr)
		}
		if fmt.Sprint(pu) != fmt.Sprint(ru) {
			t.Fatalf("unionable(%s) diverges:\n  primary: %v\n  replica: %v", id, pu, ru)
		}
	}
}

// TestReplicaReplayDeterminism is the replication property test: for
// randomized add/update/remove/pipeline sequences, a snapshot taken at a
// random point plus a replay of the remaining changelog reproduces the
// primary exactly. Concurrent readers run against the follower throughout
// the replay (meaningful under -race).
func TestReplicaReplayDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tables, bench := ingestLakeTables(t)
			n := len(tables)
			base, pool := tables[:n-3], tables[n-3:]

			primary := Bootstrap(Options{}, base)
			primary.EnableChangelog(0)

			// Random mutation script. The snapshot lands after a random
			// prefix, so every replay starts from a different floor.
			type mutation func()
			muts := []mutation{}
			for i := 0; i < 8; i++ {
				switch rng.Intn(4) {
				case 0: // add or re-add (update) a pool table
					tb := pool[rng.Intn(len(pool))]
					muts = append(muts, func() {
						if _, err := primary.AddTables([]Table{tb}); err != nil {
							t.Fatal(err)
						}
					})
				case 1: // update with truncated content
					tb := pool[rng.Intn(len(pool))]
					head := 10 + rng.Intn(30)
					muts = append(muts, func() {
						up := Table{Dataset: tb.Dataset, Frame: tb.Frame.Head(head)}
						if _, err := primary.AddTables([]Table{up}); err != nil {
							t.Fatal(err)
						}
					})
				case 2: // remove a random resident table (if any)
					muts = append(muts, func() {
						ids := primary.TableIDs()
						if len(ids) == 0 {
							return
						}
						if err := primary.RemoveTable(ids[rng.Intn(len(ids))]); err != nil {
							t.Fatal(err)
						}
					})
				case 3: // register a pipeline script
					id := fmt.Sprintf("kaggle/replay/p%d", i)
					muts = append(muts, func() {
						primary.AddPipelines([]Script{{
							ID:     id,
							Source: "import pandas as pd\ndf = pd.read_csv('x.csv')\ndf.head()\n",
							Meta:   pipeline.Metadata{Votes: 3, Task: "classification"},
						}})
					})
				}
			}

			snapAt := rng.Intn(len(muts))
			var snap bytes.Buffer
			for i, m := range muts {
				if i == snapAt {
					if err := primary.SaveTo(&snap); err != nil {
						t.Fatal(err)
					}
				}
				m()
			}

			replica, err := Read(bytes.NewReader(snap.Bytes()))
			if err != nil {
				t.Fatal(err)
			}

			// Concurrent readers against the follower while it replays: the
			// serving replica never stops answering. Meaningful under -race.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						_ = replica.Stats()
						_, _ = replica.Query(`SELECT ?t WHERE { ?t a kglids:Table . }`)
					}
				}()
			}
			pageSize := 1 + rng.Intn(3)
			cursor := replayFrom(t, primary, replica, pageSize)
			close(stop)
			wg.Wait()

			if head := primary.ChangelogPosition(); cursor != head {
				t.Fatalf("replay stopped at %d, primary head %d", cursor, head)
			}
			assertConverged(t, primary, replica, bench)
		})
	}
}

// TestChangelogCursorRecovery pins the re-seed contract: a cursor below
// the snapshot-compacted floor reports ErrLogCompacted, one beyond the
// head reports ErrLogFutureCursor, and a platform without a changelog
// reports ErrNoChangelog.
func TestChangelogCursorRecovery(t *testing.T) {
	tables, _ := ingestLakeTables(t)
	primary := Bootstrap(Options{}, tables[:len(tables)-1])
	primary.EnableChangelog(0)
	if _, err := primary.AddTables(tables[len(tables)-1:]); err != nil {
		t.Fatal(err)
	}

	// Saving a snapshot compacts the log up to the saved position.
	var snap bytes.Buffer
	if err := primary.SaveTo(&snap); err != nil {
		t.Fatal(err)
	}
	pos := primary.ChangelogPosition()
	if pos == 0 {
		t.Fatal("no changelog records after ingest")
	}
	if _, err := primary.ChangelogSince(0, 0); !errors.Is(err, ErrLogCompacted) {
		t.Fatalf("Since(0) after snapshot err = %v, want ErrLogCompacted", err)
	}
	if _, err := primary.ChangelogSince(pos+1, 0); !errors.Is(err, ErrLogFutureCursor) {
		t.Fatalf("Since(head+1) err = %v, want ErrLogFutureCursor", err)
	}
	if view, err := primary.ChangelogSince(pos, 0); err != nil || !view.AtHead {
		t.Fatalf("Since(head) = %+v, err=%v, want empty at-head page", view, err)
	}

	// A snapshot-seeded follower starts exactly at the compaction floor.
	replica, err := Read(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := replica.ChangelogPosition(); got != pos {
		t.Fatalf("replica snapshot position %d, want primary position %d", got, pos)
	}
	if _, err := replica.ChangelogSince(0, 0); !errors.Is(err, ErrNoChangelog) {
		t.Fatalf("follower ChangelogSince err = %v, want ErrNoChangelog", err)
	}
}
