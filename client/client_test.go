package client_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"kglids"
	"kglids/client"
	"kglids/internal/ingest"
	"kglids/internal/lakegen"
	"kglids/internal/pipegen"
	"kglids/internal/server"
)

// testServer boots a real platform behind the real handler, the
// end-to-end fixture for the client round-trip tests.
func testServer(t testing.TB, withIngest bool) (*httptest.Server, *kglids.Platform, *lakegen.Benchmark) {
	t.Helper()
	lake := lakegen.Generate(lakegen.Spec{
		Name: "cli", Families: 3, TablesPerFamily: 3, NoiseTables: 2,
		RowsPerTable: 50, QueryTables: 3, Seed: 71,
	})
	var tables []kglids.Table
	for _, df := range lake.Tables {
		tables = append(tables, kglids.Table{Dataset: lake.Dataset[df.Name], Frame: df})
	}
	plat := kglids.Bootstrap(kglids.Options{Theta: 0.70}, tables)
	var datasets []pipegen.Dataset
	for _, df := range lake.Tables[:1] {
		datasets = append(datasets, pipegen.FrameDataset(lake.Dataset[df.Name], df, df.Columns()[0]))
	}
	corpus := pipegen.Generate(pipegen.Options{NumPipelines: 6, Datasets: datasets, Seed: 72})
	scripts := make([]kglids.Script, len(corpus))
	for i, g := range corpus {
		scripts[i] = g.Script
	}
	plat.AddPipelines(scripts)

	opts := server.Options{}
	if withIngest {
		mgr := ingest.New(plat.Core(), ingest.Options{Workers: 1, QueueSize: 8})
		t.Cleanup(mgr.Close)
		opts.Ingest = mgr
	}
	ts := httptest.NewServer(server.New(plat, opts))
	t.Cleanup(ts.Close)
	return ts, plat, lake
}

func TestClientRoundTrip(t *testing.T) {
	ts, plat, lake := testServer(t, false)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	health, err := c.Health(ctx)
	if err != nil || health.Status != "ok" {
		t.Fatalf("Health = %+v, %v", health, err)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ps := plat.Stats()
	if stats.Triples != ps.Triples || stats.Tables != ps.Tables || stats.Generation != plat.Generation() {
		t.Fatalf("Stats = %+v, platform %+v gen %d", stats, ps, plat.Generation())
	}

	all, err := c.AllTables(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := plat.TableIDs()
	if len(all) != len(want) {
		t.Fatalf("AllTables = %d entries, platform serves %d", len(all), len(want))
	}
	for i, info := range all {
		if info.ID != want[i] || info.ID != info.Dataset+"/"+info.Name {
			t.Fatalf("table %d = %+v, want ID %s", i, info, want[i])
		}
	}

	// Pagination walker == one big page, through the client.
	q := lake.QueryTables[0][:3]
	walked, err := c.SearchAll(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	big, err := c.Search(ctx, q, client.PageOpts{Limit: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(walked, big.Items) {
		t.Fatalf("SearchAll %+v != single page %+v", walked, big.Items)
	}
	if len(walked) == 0 {
		t.Fatalf("no hits for %q", q)
	}

	tableID := lake.Dataset[lake.QueryTables[0]] + "/" + lake.QueryTables[0]
	union, err := c.Unionable(ctx, tableID, 5, client.PageOpts{})
	if err != nil || len(union.Items) == 0 {
		t.Fatalf("Unionable = %+v, %v", union, err)
	}
	similar, err := c.Similar(ctx, tableID, 3, client.PageOpts{})
	if err != nil || len(similar.Items) == 0 {
		t.Fatalf("Similar = %+v, %v", similar, err)
	}
	if similar.Items[0].ID != tableID {
		t.Fatalf("Similar[0] = %+v, want the query table itself", similar.Items[0])
	}
	if _, err := c.Libraries(ctx, 5, client.PageOpts{}); err != nil {
		t.Fatal(err)
	}

	res, err := c.SPARQL(ctx, `SELECT (COUNT(?t) AS ?n) WHERE { ?t a kglids:Table . }`)
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Results.Bindings[0]["n"]; n.Value != fmt.Sprint(ps.Tables) {
		t.Fatalf("SPARQL count = %+v, want %d", n, ps.Tables)
	}

	// Errors surface as *APIError with the envelope message and request ID.
	_, err = c.Unionable(ctx, "no/such.csv", 5, client.PageOpts{})
	ae, ok := client.AsAPIError(err)
	if !ok || ae.StatusCode != http.StatusNotFound || ae.Message == "" || ae.RequestID == "" {
		t.Fatalf("expected 404 APIError with request ID, got %v", err)
	}
	// Mutations against a read-only server are 503.
	_, err = c.DeleteTable(ctx, tableID)
	if ae, ok := client.AsAPIError(err); !ok || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("DeleteTable on read-only server = %v, want 503", err)
	}
}

func TestClientIngestLifecycle(t *testing.T) {
	ts, plat, _ := testServer(t, true)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	ref, err := c.Ingest(ctx, []client.IngestTable{{
		Dataset: "icu",
		Name:    "ward census.csv", // space: exercises path escaping on delete
		Columns: []client.IngestColumn{
			{Name: "ward", Values: []any{"a", "b", "c", "d"}},
			{Name: "beds", Values: []any{4, 8, 2, 6}},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if ref.State != client.JobQueued {
		t.Fatalf("accepted state = %q", ref.State)
	}
	job, err := c.WaitJob(ctx, ref.Job, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != client.JobDone || len(job.Added) != 1 || job.Added[0] != "icu/ward census.csv" {
		t.Fatalf("job = %+v", job)
	}
	if !plat.HasTable("icu/ward census.csv") {
		t.Fatal("ingested table not served")
	}

	jobs, err := c.Jobs(ctx, client.PageOpts{})
	if err != nil || jobs.Total != 1 {
		t.Fatalf("Jobs = %+v, %v", jobs, err)
	}

	// Delete round-trips the escaped ID.
	ref, err = c.DeleteTable(ctx, "icu/ward census.csv")
	if err != nil {
		t.Fatal(err)
	}
	if job, err = c.WaitJob(ctx, ref.Job, 10*time.Millisecond); err != nil || job.State != client.JobDone {
		t.Fatalf("removal job = %+v, %v", job, err)
	}
	if plat.HasTable("icu/ward census.csv") {
		t.Fatal("table still served after DeleteTable")
	}
}

func TestClientConditionalGETCache(t *testing.T) {
	ts, _, _ := testServer(t, false)
	var got304 atomic.Int64
	hc := &http.Client{Transport: roundTripFunc(func(req *http.Request) (*http.Response, error) {
		resp, err := http.DefaultTransport.RoundTrip(req)
		if err == nil && resp.StatusCode == http.StatusNotModified {
			got304.Add(1)
		}
		return resp, err
	})}
	c, err := client.New(ts.URL, client.WithHTTPClient(hc))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	first, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := c.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("cached Stats %+v != first %+v", again, first)
		}
	}
	if n := got304.Load(); n != 3 {
		t.Fatalf("saw %d 304 responses, want 3 (conditional GETs revalidating)", n)
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func TestClientRetriesOn429(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "ingest: job queue full"})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(client.JobRef{Job: 7, State: client.JobQueued})
	}))
	defer srv.Close()

	c, err := client.New(srv.URL, client.WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := c.Ingest(context.Background(), []client.IngestTable{{
		Dataset: "d", Name: "t.csv",
		Columns: []client.IngestColumn{{Name: "c", Values: []any{"x"}}},
	}})
	if err != nil {
		t.Fatalf("Ingest after retries: %v", err)
	}
	if ref.Job != 7 || calls.Load() != 3 {
		t.Fatalf("ref = %+v after %d calls, want job 7 after 3 calls", ref, calls.Load())
	}

	// Retries are bounded: a server that never relents yields the 429.
	calls.Store(-1000)
	cLimited, _ := client.New(srv.URL, client.WithBackoff(time.Millisecond), client.WithRetries(1))
	_, err = cLimited.Ingest(context.Background(), []client.IngestTable{{
		Dataset: "d", Name: "t.csv",
		Columns: []client.IngestColumn{{Name: "c", Values: []any{"x"}}},
	}})
	if ae, ok := client.AsAPIError(err); !ok || ae.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("bounded retry = %v, want 429 APIError", err)
	}
}

func TestClientBadBaseURL(t *testing.T) {
	if _, err := client.New("not-a-url"); err == nil {
		t.Fatal("New accepted a base URL without scheme/host")
	}
	if _, err := client.New("://nope"); err == nil {
		t.Fatal("New accepted an unparsable URL")
	}
}
