package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"kglids"
	"kglids/client"
)

// replicaPair boots a primary with the changelog enabled and a follower
// platform seeded from its snapshot endpoint.
func replicaPair(t *testing.T) (*client.Client, *kglids.Platform, *kglids.Platform) {
	t.Helper()
	ts, plat, _ := testServer(t, true)
	plat.EnableChangelog(0)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := c.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer body.Close()
	replica, err := kglids.Read(body)
	if err != nil {
		t.Fatal(err)
	}
	return c, plat, replica
}

func TestFollowerCatchUp(t *testing.T) {
	c, primary, replica := replicaPair(t)

	// Mutate the primary after the snapshot: the follower must stream the
	// resulting records and land on the identical generation.
	ids := primary.TableIDs()
	if err := primary.RemoveTable(ids[0]); err != nil {
		t.Fatal(err)
	}
	target := primary.ChangelogPosition()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	f := &client.Follower{
		Client: c,
		Cursor: replica.ChangelogPosition(),
		Poll:   time.Millisecond,
		Limit:  1, // force pagination
		Apply: func(e client.ChangeEntry) error {
			return replica.ApplyChange(e.Kind, e.Generation, e.Payload)
		},
		OnProgress: func(cursor, head uint64) {
			if cursor >= target {
				cancel() // caught up: stop tailing
			}
		},
	}
	if err := f.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled after catch-up", err)
	}
	if f.Cursor != target {
		t.Fatalf("follower cursor %d, want %d", f.Cursor, target)
	}
	if rg, pg := replica.Generation(), primary.Generation(); rg != pg {
		t.Fatalf("replica generation %d, primary %d", rg, pg)
	}
	if replica.HasTable(ids[0]) {
		t.Fatalf("replica still serves removed table %s", ids[0])
	}
}

func TestFollowerCursorGone(t *testing.T) {
	c, primary, _ := replicaPair(t)
	if err := primary.RemoveTable(primary.TableIDs()[0]); err != nil {
		t.Fatal(err)
	}

	// Saving a snapshot compacts the primary's log: cursor 0 is gone.
	if err := primary.SaveTo(io.Discard); err != nil {
		t.Fatal(err)
	}
	if primary.ChangelogPosition() == 0 {
		t.Fatal("fixture has no changelog records")
	}
	f := &client.Follower{
		Client: c,
		Cursor: 0,
		Apply:  func(client.ChangeEntry) error { return nil },
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.Run(ctx); !errors.Is(err, client.ErrCursorGone) {
		t.Fatalf("Run with compacted cursor = %v, want ErrCursorGone", err)
	}
}

func TestFollowerDetectsGap(t *testing.T) {
	// A stub primary that skips a sequence number: the follower must stop
	// rather than apply out of order.
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/changelog", func(w http.ResponseWriter, r *http.Request) {
		page := client.ChangelogPage{
			Entries: []client.ChangeEntry{
				{Seq: 1, Kind: "add", Payload: []byte{0}},
				{Seq: 3, Kind: "add", Payload: []byte{0}}, // gap: 2 missing
			},
			Head: 3, NextCursor: 3, AtHead: true,
		}
		json.NewEncoder(w).Encode(page)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	var applied []uint64
	f := &client.Follower{
		Client: c,
		Apply:  func(e client.ChangeEntry) error { applied = append(applied, e.Seq); return nil },
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = f.Run(ctx)
	if err == nil || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run over gapped log = %v, want gap error", err)
	}
	if len(applied) != 1 || applied[0] != 1 {
		t.Fatalf("applied %v, want only record 1 before the gap", applied)
	}
}
