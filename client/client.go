package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"
)

// MaxResponseBody bounds how much of a response the client will read
// (64 MiB), protecting callers from a misbehaving server.
const MaxResponseBody = 64 << 20

// defaultRetries is how many times a 429 (ingest queue full) is retried
// with exponential backoff before being surfaced as an *APIError.
const defaultRetries = 3

// etagCacheLimit bounds the conditional-GET body cache.
const etagCacheLimit = 256

// Client is a typed client for the kglids-server /api/v1 surface. It is
// safe for concurrent use.
//
// GET responses carrying an ETag (the server's store generation) are
// cached; subsequent identical requests send If-None-Match and decode the
// cached body when the server answers 304 — repeated polling of an
// unchanged server costs headers, not payloads. Mutations rejected with
// 429 (bounded ingest queue) are retried with exponential backoff.
type Client struct {
	base    *url.URL
	hc      *http.Client
	retries int
	backoff time.Duration

	mu    sync.Mutex
	etags map[string]etagEntry
}

type etagEntry struct {
	etag string
	body []byte
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times 429 responses are retried (0 disables).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the base backoff between 429 retries (doubled each
// attempt; a Retry-After header overrides it).
func WithBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// New returns a client for a server base URL such as "http://host:8080".
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parse base URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q needs a scheme and host", baseURL)
	}
	u.Path = strings.TrimSuffix(u.Path, "/")
	c := &Client{
		base:    u,
		hc:      http.DefaultClient,
		retries: defaultRetries,
		backoff: 250 * time.Millisecond,
		etags:   map[string]etagEntry{},
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Health checks liveness.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var out Health
	err := c.get(ctx, "/api/v1/healthz", nil, &out)
	return out, err
}

// Stats fetches graph statistics.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var out Stats
	err := c.get(ctx, "/api/v1/stats", nil, &out)
	return out, err
}

// Tables lists one page of served tables.
func (c *Client) Tables(ctx context.Context, p PageOpts) (Page[TableInfo], error) {
	var out Page[TableInfo]
	err := c.get(ctx, "/api/v1/tables", pageQuery(nil, p), &out)
	return out, err
}

// AllTables walks the pagination cursor to return every served table.
func (c *Client) AllTables(ctx context.Context) ([]TableInfo, error) {
	return walk(ctx, func(ctx context.Context, p PageOpts) (Page[TableInfo], error) {
		return c.Tables(ctx, p)
	})
}

// Search finds tables matching keywords (comma-separated keywords are
// AND'd, mirroring search_keywords with one conjunction).
func (c *Client) Search(ctx context.Context, q string, p PageOpts) (Page[TableHit], error) {
	var out Page[TableHit]
	err := c.get(ctx, "/api/v1/search", pageQuery(url.Values{"q": {q}}, p), &out)
	return out, err
}

// SearchAll walks the cursor to return every hit for q.
func (c *Client) SearchAll(ctx context.Context, q string) ([]TableHit, error) {
	return walk(ctx, func(ctx context.Context, p PageOpts) (Page[TableHit], error) {
		return c.Search(ctx, q, p)
	})
}

// Unionable returns the top-k tables unionable with a "dataset/table" ID.
func (c *Client) Unionable(ctx context.Context, tableID string, k int, p PageOpts) (Page[TableHit], error) {
	var out Page[TableHit]
	err := c.get(ctx, "/api/v1/unionable", pageQuery(kQuery(tableID, k), p), &out)
	return out, err
}

// Similar returns the top-k tables most similar to a "dataset/table" ID
// by embedding cosine (HNSW index).
func (c *Client) Similar(ctx context.Context, tableID string, k int, p PageOpts) (Page[TableHit], error) {
	var out Page[TableHit]
	err := c.get(ctx, "/api/v1/similar", pageQuery(kQuery(tableID, k), p), &out)
	return out, err
}

// Libraries returns the k most-used libraries across pipelines.
func (c *Client) Libraries(ctx context.Context, k int, p PageOpts) (Page[Library], error) {
	q := url.Values{}
	if k > 0 {
		q.Set("k", strconv.Itoa(k))
	}
	var out Page[Library]
	err := c.get(ctx, "/api/v1/libraries", pageQuery(q, p), &out)
	return out, err
}

// SPARQL executes a SPARQL SELECT via the 1.1 protocol (POST with an
// application/sparql-query body) and returns the results-JSON document.
func (c *Client) SPARQL(ctx context.Context, query string) (*SPARQLResult, error) {
	var out SPARQLResult
	err := c.do(ctx, http.MethodPost, "/api/v1/sparql", nil,
		[]byte(query), "application/sparql-query", &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Changelog fetches one page of the primary's mutation changelog starting
// after cursor (0 = from the compaction floor). limit bounds the page
// size; 0 means the server default. A cursor below the compaction floor
// or beyond the head fails with ErrCursorGone: the follower must re-seed
// from a fresh snapshot.
func (c *Client) Changelog(ctx context.Context, cursor uint64, limit int) (ChangelogPage, error) {
	q := url.Values{"cursor": {strconv.FormatUint(cursor, 10)}}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	var out ChangelogPage
	err := c.get(ctx, "/api/v1/changelog", q, &out)
	if ae, ok := AsAPIError(err); ok && ae.StatusCode == http.StatusGone {
		return out, fmt.Errorf("%w: %s", ErrCursorGone, ae.Message)
	}
	return out, err
}

// Snapshot streams the server's current platform snapshot (the raw binary
// format of internal/snapshot). The caller must Close the reader. Unlike
// JSON endpoints, the body is not bounded by MaxResponseBody — snapshots
// of large lakes legitimately exceed it.
func (c *Client) Snapshot(ctx context.Context) (io.ReadCloser, error) {
	target, err := c.base.Parse(c.base.Path + "/api/v1/snapshot")
	if err != nil {
		return nil, fmt.Errorf("client: build snapshot URL: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target.String(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		payload, _ := io.ReadAll(io.LimitReader(resp.Body, MaxResponseBody))
		resp.Body.Close()
		return nil, apiError(resp, payload)
	}
	return resp.Body, nil
}

// Ingest submits tables as one asynchronous add job; the returned JobRef
// can be polled with Job or awaited with WaitJob. Queue-full rejections
// are retried with backoff before surfacing as an *APIError with status
// 429.
func (c *Client) Ingest(ctx context.Context, tables []IngestTable) (JobRef, error) {
	body, err := json.Marshal(IngestRequest{Tables: tables})
	if err != nil {
		return JobRef{}, err
	}
	var out JobRef
	err = c.do(ctx, http.MethodPost, "/api/v1/ingest", nil, body, "application/json", &out)
	return out, err
}

// DeleteTable submits an asynchronous removal of a "dataset/table" ID.
// The ID's segments are percent-escaped, so names with slashes, spaces,
// or percent signs round-trip.
func (c *Client) DeleteTable(ctx context.Context, tableID string) (JobRef, error) {
	var out JobRef
	err := c.do(ctx, http.MethodDelete, "/api/v1/tables/"+escapeID(tableID), nil, nil, "", &out)
	return out, err
}

// Job fetches one job's current state.
func (c *Client) Job(ctx context.Context, id int) (Job, error) {
	var out Job
	err := c.get(ctx, "/api/v1/jobs/"+strconv.Itoa(id), nil, &out)
	return out, err
}

// Jobs lists one page of the job history (submission order).
func (c *Client) Jobs(ctx context.Context, p PageOpts) (Page[Job], error) {
	var out Page[Job]
	err := c.get(ctx, "/api/v1/jobs", pageQuery(nil, p), &out)
	return out, err
}

// WaitJob polls a job until it reaches a terminal state (done or failed)
// or ctx expires. poll <= 0 defaults to 100ms.
func (c *Client) WaitJob(ctx context.Context, id int, poll time.Duration) (Job, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return Job{}, err
		}
		if j.Terminal() {
			return j, nil
		}
		select {
		case <-ctx.Done():
			return j, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// walk accumulates every page of a list endpoint.
func walk[T any](ctx context.Context, fetch func(context.Context, PageOpts) (Page[T], error)) ([]T, error) {
	var out []T
	p := PageOpts{}
	for {
		page, err := fetch(ctx, p)
		if err != nil {
			return nil, err
		}
		out = append(out, page.Items...)
		if page.NextCursor == "" {
			return out, nil
		}
		p.Cursor = page.NextCursor
	}
}

func kQuery(tableID string, k int) url.Values {
	q := url.Values{"table": {tableID}}
	if k > 0 {
		q.Set("k", strconv.Itoa(k))
	}
	return q
}

func pageQuery(q url.Values, p PageOpts) url.Values {
	if q == nil {
		q = url.Values{}
	}
	if p.Cursor != "" {
		q.Set("cursor", p.Cursor)
	}
	if p.Limit > 0 {
		q.Set("limit", strconv.Itoa(p.Limit))
	}
	return q
}

// escapeID percent-escapes each segment of a "dataset/table" ID for use
// in a URL path, preserving the slashes between segments.
func escapeID(id string) string {
	segs := strings.Split(id, "/")
	for i, s := range segs {
		segs[i] = url.PathEscape(s)
	}
	return strings.Join(segs, "/")
}

// get issues a conditional GET: cached ETags ride along as If-None-Match
// and a 304 decodes the cached body.
func (c *Client) get(ctx context.Context, path string, q url.Values, out any) error {
	return c.do(ctx, http.MethodGet, path, q, nil, "", out)
}

// do is the transport core: URL assembly, conditional GET, bounded 429
// retry, error-envelope decoding.
func (c *Client) do(ctx context.Context, method, path string, q url.Values, body []byte, contentType string, out any) error {
	// base.Parse keeps percent-escaping intact (RawPath), so escaped IDs
	// survive the round-trip.
	target, err := c.base.Parse(c.base.Path + path)
	if err != nil {
		return fmt.Errorf("client: build URL for %s: %w", path, err)
	}
	if len(q) > 0 {
		target.RawQuery = q.Encode()
	}
	urlKey := target.String()

	for attempt := 0; ; attempt++ {
		var reqBody io.Reader
		if body != nil {
			reqBody = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, urlKey, reqBody)
		if err != nil {
			return err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		// Accept-Encoding is left to the transport, which negotiates gzip
		// and decompresses transparently.
		var cached etagEntry
		if method == http.MethodGet {
			c.mu.Lock()
			cached = c.etags[urlKey]
			c.mu.Unlock()
			if cached.etag != "" {
				req.Header.Set("If-None-Match", cached.etag)
			}
		}

		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		payload, err := io.ReadAll(io.LimitReader(resp.Body, MaxResponseBody))
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("client: read response: %w", err)
		}

		switch {
		case resp.StatusCode == http.StatusNotModified && cached.etag != "":
			payload = cached.body
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			if method == http.MethodGet {
				if etag := resp.Header.Get("ETag"); etag != "" {
					c.storeETag(urlKey, etag, payload)
				}
			}
		case resp.StatusCode == http.StatusTooManyRequests && attempt < c.retries:
			if err := sleepBackoff(ctx, retryDelay(resp, c.backoff, attempt)); err != nil {
				return err
			}
			continue
		default:
			return apiError(resp, payload)
		}

		if out == nil {
			return nil
		}
		if err := json.Unmarshal(payload, out); err != nil {
			return fmt.Errorf("client: decode %s %s response: %w", method, path, err)
		}
		return nil
	}
}

func (c *Client) storeETag(urlKey, etag string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.etags) >= etagCacheLimit {
		// Evict an arbitrary entry; the cache is an optimization, not a
		// correctness surface.
		for k := range c.etags {
			delete(c.etags, k)
			break
		}
	}
	c.etags[urlKey] = etagEntry{etag: etag, body: body}
}

// retryDelay honors Retry-After seconds when present, else doubles the
// base backoff per attempt.
func retryDelay(resp *http.Response, base time.Duration, attempt int) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return base << attempt
}

func sleepBackoff(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func apiError(resp *http.Response, payload []byte) error {
	var env ErrorEnvelope
	msg := strings.TrimSpace(string(payload))
	if err := json.Unmarshal(payload, &env); err == nil && env.Error != "" {
		msg = env.Error
	}
	return &APIError{
		StatusCode: resp.StatusCode,
		Message:    msg,
		RequestID:  resp.Header.Get("X-Request-ID"),
	}
}

// AsAPIError unwraps an *APIError from err, if present.
func AsAPIError(err error) (*APIError, bool) {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae, true
	}
	return nil, false
}
