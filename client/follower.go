package client

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrCursorGone reports that the follower's cursor fell below the
// primary's compaction floor (or pointed beyond its head after a primary
// reset): the incremental stream cannot resume, and the follower must
// re-seed from a fresh snapshot.
var ErrCursorGone = errors.New("client: changelog cursor not available on primary")

// Follower tails a primary's mutation changelog, applying each record in
// sequence order. It owns catch-up pacing (immediate re-fetch while
// behind, polling at the configured interval once at head) and cursor
// bookkeeping; record decoding and application are delegated to Apply.
type Follower struct {
	// Client is the connection to the primary.
	Client *Client
	// Cursor is the position already applied (typically the snapshot's
	// changelog position). Run advances it as records apply.
	Cursor uint64
	// Poll is the at-head poll interval — the staleness bound while the
	// primary is idle. <= 0 defaults to 500ms.
	Poll time.Duration
	// Limit bounds each changelog page; 0 means the server default.
	Limit int
	// Apply applies one record to the local platform. An error stops the
	// follower and is returned from Run.
	Apply func(ChangeEntry) error
	// OnProgress, when non-nil, is invoked after each applied page with
	// the current cursor and the primary head observed on that page.
	OnProgress func(cursor, head uint64)
}

// Run tails the changelog until ctx is done (returns ctx.Err()), Apply
// fails, or the cursor is lost to compaction (returns an error wrapping
// ErrCursorGone; the caller should re-seed from a snapshot and restart).
func (f *Follower) Run(ctx context.Context) error {
	poll := f.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		page, err := f.Client.Changelog(ctx, f.Cursor, f.Limit)
		if err != nil {
			if errors.Is(err, ErrCursorGone) || ctx.Err() != nil {
				return err
			}
			// Transient transport or server error: retry at poll cadence.
			if err := sleepBackoff(ctx, poll); err != nil {
				return err
			}
			continue
		}
		for _, e := range page.Entries {
			if e.Seq != f.Cursor+1 {
				return fmt.Errorf("client: changelog gap: applied through %d, next record is %d", f.Cursor, e.Seq)
			}
			if err := f.Apply(e); err != nil {
				return fmt.Errorf("client: apply changelog record %d (%s): %w", e.Seq, e.Kind, err)
			}
			f.Cursor = e.Seq
		}
		if f.OnProgress != nil {
			f.OnProgress(f.Cursor, page.Head)
		}
		if page.AtHead {
			if err := sleepBackoff(ctx, poll); err != nil {
				return err
			}
		}
	}
}
