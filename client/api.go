// Package client is the typed Go client for the kglids-server `/api/v1`
// surface — and, by construction, the definition of that surface's wire
// contract: internal/server marshals the DTO types in this file, so the
// client and the server cannot drift apart.
//
// The v1 contract, in brief:
//
//   - Every response body is a dedicated DTO — no internal representation
//     (rdf.Term, store IDs) ever appears on the wire. Table hits are
//     {"id","name","score"} with id = "dataset/table".
//   - Every list endpoint paginates with an opaque cursor and a
//     server-capped limit; pages carry {"items","total","next_cursor"}.
//   - Read endpoints answer conditional GETs: responses carry
//     `ETag: "<store generation>"`, and a request whose If-None-Match
//     still matches the live generation is answered 304 with no body.
//   - /api/v1/sparql speaks the SPARQL 1.1 protocol (GET ?query=, POST
//     application/sparql-query or form) and returns
//     application/sparql-results+json.
//   - Errors are a JSON envelope {"error":"..."} with a matching status,
//     surfaced here as *APIError.
package client

import (
	"fmt"
	"time"
)

// Stats is the LiDS graph statistics DTO (GET /api/v1/stats).
type Stats struct {
	Triples         int    `json:"triples"`
	Nodes           int    `json:"nodes"`
	Predicates      int    `json:"predicates"`
	NamedGraphs     int    `json:"named_graphs"`
	Columns         int    `json:"columns"`
	Tables          int    `json:"tables"`
	Datasets        int    `json:"datasets"`
	SimilarityEdges int    `json:"similarity_edges"`
	Generation      uint64 `json:"generation"`
}

// Health is the liveness DTO (GET /api/v1/healthz).
type Health struct {
	Status     string `json:"status"`
	Generation uint64 `json:"generation"`
	// Role is "primary" on a writable server and "replica" on a read-only
	// follower (empty from servers predating replication).
	Role string `json:"role,omitempty"`
	// AppliedGeneration and LagSeconds report a replica's replication
	// state: the store generation it has applied and how far (in seconds)
	// its newest applied record trails the primary. Both are zero on
	// primaries.
	AppliedGeneration uint64  `json:"applied_generation,omitempty"`
	LagSeconds        float64 `json:"lag_seconds,omitempty"`
}

// ChangeEntry is one replicated mutation record
// (GET /api/v1/changelog). Payload is the binary-encoded record body
// (base64 on the wire); Kind selects its schema: "add" and "remove" carry
// quad batches, "remove-graph" a named graph, "platform-delta" the
// platform-level half of a splice or removal.
type ChangeEntry struct {
	// Seq is the record's position in the primary's changelog; records
	// apply strictly in Seq order.
	Seq uint64 `json:"seq"`
	// Generation is the primary's store generation after this record was
	// applied. For quad-batch records a follower reaches the same value;
	// for platform-delta records it is diagnostic only.
	Generation uint64 `json:"generation"`
	// TS is the primary's wall-clock append time (Unix nanoseconds), the
	// basis of follower lag measurement.
	TS      int64  `json:"ts"`
	Kind    string `json:"kind"`
	Payload []byte `json:"payload"`
}

// ChangelogPage is one page of the mutation changelog.
type ChangelogPage struct {
	Entries []ChangeEntry `json:"entries"`
	// Head is the primary's newest sequence number, Floor its compaction
	// floor: cursors below Floor are gone (410) and require a fresh
	// snapshot.
	Head  uint64 `json:"head"`
	Floor uint64 `json:"floor"`
	// AtHead reports that this page ends at Head — the follower is caught
	// up and should poll rather than immediately re-fetch.
	AtHead bool `json:"at_head"`
	// NextCursor is the cursor for the next page: the Seq of the last
	// entry, or the request cursor when the page is empty.
	NextCursor uint64 `json:"next_cursor"`
}

// TableHit is one ranked table result (search, unionable, similar).
type TableHit struct {
	// ID is the stable "dataset/table" identifier, usable with every
	// other endpoint (unionable, similar, DELETE /tables/{id}).
	ID    string  `json:"id"`
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

// TableInfo identifies one served table (GET /api/v1/tables).
type TableInfo struct {
	ID      string `json:"id"`
	Dataset string `json:"dataset"`
	Name    string `json:"name"`
}

// Library is one library-popularity row (GET /api/v1/libraries).
type Library struct {
	Library   string `json:"library"`
	Pipelines int    `json:"pipelines"`
}

// Page is the envelope of every paginated list response. Items holds one
// page, Total the size of the full result set, and NextCursor the opaque
// cursor of the next page ("" on the last page).
type Page[T any] struct {
	Items      []T    `json:"items"`
	Total      int    `json:"total"`
	NextCursor string `json:"next_cursor,omitempty"`
}

// PageOpts selects one page of a list endpoint. The zero value asks for
// the first page at the server's default limit.
type PageOpts struct {
	// Cursor is the opaque NextCursor of a previous page.
	Cursor string
	// Limit bounds the page size; 0 means the server default. The server
	// caps oversized limits.
	Limit int
}

// Job lifecycle states (mirroring internal/ingest).
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// Job is the DTO of one ingestion job (GET /api/v1/jobs/{id}).
type Job struct {
	ID    int    `json:"id"`
	Kind  string `json:"kind"` // "add" or "remove"
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// Tables are the "dataset/table" IDs the job was submitted with.
	Tables []string `json:"tables"`
	// Added, Updated, and Skipped partition an add job's tables by
	// outcome; Removed lists the IDs a remove job deleted.
	Added   []string `json:"added,omitempty"`
	Updated []string `json:"updated,omitempty"`
	Skipped []string `json:"skipped,omitempty"`
	Removed []string `json:"removed,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`
}

// Terminal reports whether the job has finished (successfully or not).
func (j Job) Terminal() bool { return j.State == JobDone || j.State == JobFailed }

// JobRef is the 202 acknowledgement of an accepted mutation.
type JobRef struct {
	Job   int    `json:"job"`
	State string `json:"state"`
}

// IngestColumn is one column of a submitted table. Values may be strings
// (parsed like CSV cells), numbers, booleans, or nil.
type IngestColumn struct {
	Name   string `json:"name"`
	Values []any  `json:"values"`
}

// IngestTable is the wire form of one table submitted to POST /api/v1/ingest.
type IngestTable struct {
	Dataset string         `json:"dataset"`
	Name    string         `json:"name"`
	Columns []IngestColumn `json:"columns"`
}

// IngestRequest is the POST /api/v1/ingest body.
type IngestRequest struct {
	Tables []IngestTable `json:"tables"`
}

// SPARQLTerm is one RDF term in a SPARQL results-JSON binding. Type is
// "uri", "literal", "bnode", or "triple" (RDF-star quoted triple, with its
// Turtle-star rendering as Value). Datatype is empty for xsd:string.
type SPARQLTerm struct {
	Type     string `json:"type"`
	Value    string `json:"value"`
	Datatype string `json:"datatype,omitempty"`
}

// SPARQLHead carries the projected variable names.
type SPARQLHead struct {
	Vars []string `json:"vars"`
}

// SPARQLBindings carries the solution sequence; unbound variables are
// absent from their row's map, per the SPARQL 1.1 results spec.
type SPARQLBindings struct {
	Bindings []map[string]SPARQLTerm `json:"bindings"`
}

// SPARQLResult is an application/sparql-results+json document.
type SPARQLResult struct {
	Head    SPARQLHead     `json:"head"`
	Results SPARQLBindings `json:"results"`
}

// ErrorEnvelope is the uniform error body of every non-2xx response.
type ErrorEnvelope struct {
	Error string `json:"error"`
}

// APIError is a non-2xx server response surfaced as a Go error.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Message is the server's error envelope text.
	Message string
	// RequestID echoes the response's X-Request-ID for log correlation.
	RequestID string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("kglids api: %d %s", e.StatusCode, e.Message)
}
